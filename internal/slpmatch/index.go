package slpmatch

import (
	"sort"

	"docspanner/internal/automata"
	"docspanner/internal/slp"
	"docspanner/internal/spans"
)

// Index holds, for one deterministic extended vset-automaton, the
// per-SLP-node data used to enumerate the spanner over compressed
// documents: the deterministic pure-letter step function P, the
// mask-anywhere reachability matrix E (at every boundary before a letter,
// at most one mask may fire), and the at-least-one-mask matrix E⁺ used to
// prune subtrees without result events. All three are memoized per node,
// so they are computed once per distinct node of a document database and
// extended on demand when CDE updates create fresh nodes.
type Index struct {
	d         *automata.DEVA
	nq        int
	maskEdges [][]maskEdge // per state, sorted: deterministic enumeration order
	pure      map[*slp.Node][]int32
	em        map[*slp.Node]*automata.BoolMatrix
	ep        map[*slp.Node]*automata.BoolMatrix

	pureLeaf map[byte][]int32
	emLeaf   map[byte]*automata.BoolMatrix
	epLeaf   map[byte]*automata.BoolMatrix
}

// maskEdge is a sorted mask transition.
type maskEdge struct {
	mask automata.Mask
	to   int
}

// NewIndex prepares an index for the given deterministic eVA.
func NewIndex(d *automata.DEVA) *Index {
	ix := &Index{
		d:         d,
		nq:        d.NumStates(),
		maskEdges: sortedMaskEdges(d),
		pure:      map[*slp.Node][]int32{},
		em:        map[*slp.Node]*automata.BoolMatrix{},
		ep:        map[*slp.Node]*automata.BoolMatrix{},
		pureLeaf:  map[byte][]int32{},
		emLeaf:    map[byte]*automata.BoolMatrix{},
		epLeaf:    map[byte]*automata.BoolMatrix{},
	}
	letters, _ := d.AlphabetAndMasks()
	for _, b := range letters {
		ix.buildLeaf(b)
	}
	return ix
}

// sortedMaskEdges indexes each state's mask transitions in mask order.
func sortedMaskEdges(d *automata.DEVA) [][]maskEdge {
	out := make([][]maskEdge, d.NumStates())
	for q := range out {
		for m, t := range d.Masks[q] {
			out[q] = append(out[q], maskEdge{m, t})
		}
		sort.Slice(out[q], func(i, j int) bool { return out[q][i].mask < out[q][j].mask })
	}
	return out
}

func (ix *Index) buildLeaf(b byte) {
	nq := ix.nq
	p := make([]int32, nq)
	em := automata.NewBoolMatrix(nq)
	ep := automata.NewBoolMatrix(nq)
	for q := 0; q < nq; q++ {
		s := ix.d.Step(q, b)
		p[q] = int32(s)
		if s >= 0 {
			em.Set(q, s)
		}
		for _, t := range ix.d.Masks[q] {
			if s2 := ix.d.Step(t, b); s2 >= 0 {
				em.Set(q, s2)
				ep.Set(q, s2)
			}
		}
	}
	ix.pureLeaf[b] = p
	ix.emLeaf[b] = em
	ix.epLeaf[b] = ep
}

func (ix *Index) leafData(b byte) ([]int32, *automata.BoolMatrix, *automata.BoolMatrix) {
	if _, ok := ix.pureLeaf[b]; !ok {
		ix.buildLeaf(b)
	}
	return ix.pureLeaf[b], ix.emLeaf[b], ix.epLeaf[b]
}

// node computes (memoized) the P/E/E⁺ data of an SLP node.
func (ix *Index) node(n *slp.Node) ([]int32, *automata.BoolMatrix, *automata.BoolMatrix) {
	if n.IsLeaf() {
		return ix.leafData(n.LeafByte())
	}
	if p, ok := ix.pure[n]; ok {
		return p, ix.em[n], ix.ep[n]
	}
	pl, eml, epl := ix.node(n.Left())
	pr, emr, epr := ix.node(n.Right())
	nq := ix.nq
	p := make([]int32, nq)
	for q := 0; q < nq; q++ {
		if pl[q] >= 0 {
			p[q] = pr[pl[q]]
		} else {
			p[q] = -1
		}
	}
	em := eml.Mul(emr)
	// E⁺_AB = E⁺_A·E_B  ∨  P_A ; E⁺_B (mask in the left part, or pure
	// left then mask in the right part).
	ep := epl.Mul(emr)
	for q := 0; q < nq; q++ {
		if pl[q] >= 0 {
			src := epr.Row(int(pl[q]))
			dst := ep.Row(q)
			for k := range dst {
				dst[k] |= src[k]
			}
		}
	}
	ix.pure[n] = p
	ix.em[n] = em
	ix.ep[n] = ep
	return p, em, ep
}

// DEVA returns the underlying deterministic automaton.
func (ix *Index) DEVA() *automata.DEVA { return ix.d }

// Warm precomputes the index for all nodes of a document — the
// preprocessing phase, linear in the SLP size (data complexity).
func (ix *Index) Warm(root *slp.Node) {
	if root != nil {
		ix.node(root)
	}
}

// CachedNodes reports the number of inner SLP nodes with computed data.
func (ix *Index) CachedNodes() int { return len(ix.pure) }

// NonEmpty decides whether the spanner result on 𝔇(root) is non-empty,
// in compressed time (no decompression).
func (ix *Index) NonEmpty(root *slp.Node) bool {
	finalVec := ix.finalAlive()
	if root == nil {
		return vecGet(finalVec, ix.d.Start)
	}
	_, em, _ := ix.node(root)
	v := em.ApplyRight(finalVec)
	return vecGet(v, ix.d.Start)
}

// finalAlive returns the vector of states accepting at the end boundary
// (directly final, or final after one last mask).
func (ix *Index) finalAlive() []uint64 {
	v := automata.NewBitVec(ix.nq)
	for q := 0; q < ix.nq; q++ {
		if ix.d.Final[q] {
			automata.BitSet(v, q)
			continue
		}
		for _, t := range ix.d.Masks[q] {
			if ix.d.Final[t] {
				automata.BitSet(v, q)
				break
			}
		}
	}
	return v
}

// event mirrors the uncompressed enumerator's event type.
type event struct {
	boundary int64
	mask     automata.Mask
}

// Each enumerates the spanner's result tuples on 𝔇(root) without
// decompressing the document: after Warm (linear in |S|), the delay
// between consecutive tuples is O(ord(root) · poly(automaton)) — i.e.
// O(log |D|) on balanced SLPs, matching the survey's Section 4 bound.
// Enumeration stops early when f returns false.
func (ix *Index) Each(root *slp.Node, f func(spans.Tuple) bool) {
	ix.Warm(root)
	e := &cenum{ix: ix, root: root, emit: f}
	e.dfs(ix.d.Start, 0, nil)
}

// Count returns the number of result tuples.
func (ix *Index) Count(root *slp.Node) int {
	n := 0
	ix.Each(root, func(spans.Tuple) bool { n++; return true })
	return n
}

// All materializes the relation (tests and small outputs only).
func (ix *Index) All(root *slp.Node) *spans.Relation {
	out := spans.NewRelation()
	ix.Each(root, func(t spans.Tuple) bool { out.Add(t); return true })
	return out
}

type cenum struct {
	ix      *Index
	root    *slp.Node
	emit    func(spans.Tuple) bool
	aborted bool
}

// dfs enumerates all accepting runs from state q at absolute boundary
// pos, with the given event prefix; no mask has fired at pos yet.
func (e *cenum) dfs(q int, pos int64, events []event) {
	if e.aborted {
		return
	}
	n := e.root.Len()
	if pos == n {
		e.finish(q, events)
		return
	}
	avRoot := e.ix.finalAlive()
	exit := e.walk(e.root, q, pos, avRoot, 0, events)
	if e.aborted || exit < 0 {
		return
	}
	e.finish(int(exit), events)
}

// finish handles the end-of-document boundary: emit the pure run and the
// runs taking one final mask.
func (e *cenum) finish(q int, events []event) {
	d := e.ix.d
	if d.Final[q] {
		if !e.emit(e.tuple(events)) {
			e.aborted = true
			return
		}
	}
	for _, me := range e.ix.maskEdges[q] {
		if d.Final[me.to] {
			ev := append(events, event{e.root.Len(), me.mask})
			if !e.emit(e.tuple(ev)) {
				e.aborted = true
				return
			}
		}
	}
}

// walk processes node a from local offset i entering state q; av is the
// alive vector for the boundary after a. It fires every productive event
// inside a (recursing into dfs for the continuation) and returns the
// pure-letter exit state (−1 if the pure run dies).
func (e *cenum) walk(a *slp.Node, q int, i int64, av []uint64, off int64, events []event) int32 {
	if e.aborted {
		return -1
	}
	ix := e.ix
	if a.IsLeaf() {
		b := a.LeafByte()
		d := ix.d
		for _, me := range ix.maskEdges[q] {
			s := d.Step(me.to, b)
			if s < 0 || !vecGet(av, s) {
				continue
			}
			ev := append(events, event{off, me.mask})
			e.dfs(s, off+1, ev)
			if e.aborted {
				return -1
			}
		}
		pure, _, _ := ix.leafData(b)
		return pure[q]
	}
	llen := a.Left().Len()
	if i >= llen {
		return e.walk(a.Right(), q, i-llen, av, off+llen, events)
	}
	// Prune whole subtrees without productive events (only valid from
	// offset 0, where E⁺ describes the whole node).
	if i == 0 {
		p, _, epa := ix.node(a)
		if !rowMeets(epa, q, av) {
			return p[q]
		}
	}
	_, emr, _ := ix.node(a.Right())
	avL := emr.ApplyRight(av)
	ls := e.walk(a.Left(), q, i, avL, off, events)
	if e.aborted || ls < 0 {
		return -1
	}
	return e.walk(a.Right(), int(ls), 0, av, off+llen, events)
}

// rowMeets reports whether row q of m intersects vector v.
func rowMeets(m *automata.BoolMatrix, q int, v []uint64) bool {
	row := m.Row(q)
	for k := range row {
		if row[k]&v[k] != 0 {
			return true
		}
	}
	return false
}

func vecGet(v []uint64, q int) bool { return automata.BitGet(v, q) }

// tuple converts events into a span tuple (1-based positions).
func (e *cenum) tuple(events []event) spans.Tuple {
	t := make(spans.Tuple)
	mi := e.ix.d.Index
	for _, ev := range events {
		pos := int(ev.boundary) + 1
		for _, mk := range mi.Markers(ev.mask) {
			if mk.Close {
				s := t[mk.Var]
				s.End = pos
				t[mk.Var] = s
			} else {
				t[mk.Var] = spans.S(pos, pos)
			}
		}
	}
	return t
}
