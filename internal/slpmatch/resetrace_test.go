package slpmatch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"docspanner/internal/slp"
)

// TestResetCachesWhileInUse certifies the ResetCaches contract under
// -race: resetting the shared registries while Matchers, Indexes, and
// Counters are mid-flight on other goroutines — and while new instances
// are being constructed concurrently — is free of data races and never
// changes a result. Instances created before a reset keep their
// (self-contained) cores; instances created after start cold. spannerd
// exposes this as POST /admin/flush-caches on a live server.
func TestResetCachesWhileInUse(t *testing.T) {
	d := spannerDEVA(t, ".*!x{ab}.*")
	docs := make([]*slp.Node, 5)
	want := make([]int, len(docs))
	ref := NewIndex(d)
	for i := range docs {
		docs[i] = slp.Repeat(slp.FromBytes([]byte("ab")), int64(32+i))
		want[i] = ref.Count(docs[i])
	}
	nfa := plainNFA(t, "(ab)*")
	refM, err := NewMatcher(nfa)
	if err != nil {
		t.Fatal(err)
	}
	wantAccept := make([]bool, len(docs))
	for i := range docs {
		wantAccept[i] = refM.Accepts(docs[i])
	}

	const (
		workers    = 8
		iterations = 40
	)
	var stop atomic.Bool
	var wg, resetWG sync.WaitGroup
	errs := make(chan error, workers*iterations)

	// Resetter: flush the registries continuously while everyone else
	// is matching, counting, and constructing.
	resetWG.Add(1)
	go func() {
		defer resetWG.Done()
		for !stop.Load() {
			ResetCaches()
		}
	}()

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// One long-lived instance from before any reset...
			ix := NewIndex(d)
			for it := 0; it < iterations; it++ {
				j := (g + it) % len(docs)
				if got := ix.Count(docs[j]); got != want[j] {
					errs <- fmt.Errorf("goroutine %d: long-lived Count(doc %d) = %d, want %d", g, j, got, want[j])
				}
				// ...and a fresh instance per iteration, racing the
				// resetter on registry insertion.
				fresh := NewIndex(d)
				if got := fresh.Count(docs[j]); got != want[j] {
					errs <- fmt.Errorf("goroutine %d: fresh Count(doc %d) = %d, want %d", g, j, got, want[j])
				}
				m, err := NewMatcher(nfa)
				if err != nil {
					errs <- err
					continue
				}
				if got := m.Accepts(docs[j]); got != wantAccept[j] {
					errs <- fmt.Errorf("goroutine %d: Accepts(doc %d) = %v, want %v", g, j, got, wantAccept[j])
				}
			}
		}(g)
	}

	wg.Wait()
	stop.Store(true)
	resetWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
