// Package enum implements the enumeration problem for regular spanners
// (Section 2.5 of Schmid and Schweikardt's PODS 2022 survey): after a
// preprocessing phase LINEAR in the document length, all result tuples are
// enumerated without repetition with CONSTANT delay in data complexity.
//
// The algorithm follows Florenzano, Riveros, Ugarte, Vansummeren, and
// Vrgoč (ACM TODS 2020): the spanner is first compiled into a
// deterministic extended vset-automaton (query complexity only — this cost
// vanishes in data complexity, as the survey notes), the preprocessing
// computes per-position liveness and jump tables over the product of
// automaton states and document positions, and the enumeration phase walks
// only "event boundaries" — positions where a marker set can fire on some
// accepting run — skipping deterministic letter-only stretches in O(1) via
// the jump pointers. Every node of the search tree is live (leads to at
// least one output), so the delay between consecutive tuples is bounded by
// the automaton size and variable count, independent of the document.
package enum

import (
	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// Enumerator holds the preprocessed data structures for one (spanner,
// document) pair. After NewEnumerator returns, the tables are read-only:
// Each, Count, and All may run concurrently from multiple goroutines, and
// several Enumerators may share one DEVA (which Determinize returns fully
// built and is never mutated here; its dense compilation is hash-consed
// across Enumerators).
type Enumerator struct {
	d   *automata.DEVA
	c   *automata.CompiledDEVA
	doc []byte

	// Flat (n+1)×Q tables, indexed [i*nq+q].
	aliveNoMask []bool  // accepting run from (q,i) whose next action is a letter (or i=n and final)
	alive       []bool  // accepting run from (q,i), mask at i still allowed
	finishable  []bool  // pure-letter run from (q,i) to acceptance, no further masks
	jump        []int32 // next boundary ≥ i with a live mask event, following letters; -1 if none
	jumpState   []int32 // automaton state at that boundary
}

// NewEnumerator runs the preprocessing phase: time and space O(|doc|·|Q|)
// for the fixed automaton (linear in the document). Transitions are read
// from the dense compiled tables, not the construction-time maps.
func NewEnumerator(d *automata.DEVA, doc []byte) *Enumerator {
	n := len(doc)
	c := d.Compiled()
	nq := c.NQ
	e := &Enumerator{
		d:           d,
		c:           c,
		doc:         doc,
		aliveNoMask: make([]bool, (n+1)*nq),
		alive:       make([]bool, (n+1)*nq),
		finishable:  make([]bool, (n+1)*nq),
		jump:        make([]int32, (n+1)*nq),
		jumpState:   make([]int32, (n+1)*nq),
	}
	at := func(i, q int) int { return i*nq + q }

	// Boundary n.
	for q := 0; q < nq; q++ {
		ix := at(n, q)
		e.aliveNoMask[ix] = c.Final[q]
		e.finishable[ix] = c.Final[q]
	}
	for q := 0; q < nq; q++ {
		ix := at(n, q)
		e.alive[ix] = e.aliveNoMask[ix]
		for _, me := range c.MaskEdges[q] {
			if e.aliveNoMask[at(n, int(me.To))] {
				e.alive[ix] = true
				break
			}
		}
		if e.hasEvent(n, q) {
			e.jump[ix] = int32(n)
			e.jumpState[ix] = int32(q)
		} else {
			e.jump[ix] = -1
			e.jumpState[ix] = -1
		}
	}

	// Boundaries n-1 .. 0. steps is the dense successor row for the
	// letter at i (nil when the automaton never reads that byte).
	for i := n - 1; i >= 0; i-- {
		steps := c.StepsFor(doc[i])
		for q := 0; q < nq; q++ {
			if steps == nil {
				continue
			}
			ix := at(i, q)
			if s := steps[q]; s >= 0 {
				e.aliveNoMask[ix] = e.alive[at(i+1, int(s))]
				e.finishable[ix] = e.finishable[at(i+1, int(s))]
			}
		}
		for q := 0; q < nq; q++ {
			ix := at(i, q)
			e.alive[ix] = e.aliveNoMask[ix]
			if !e.alive[ix] {
				for _, me := range c.MaskEdges[q] {
					if e.aliveNoMask[at(i, int(me.To))] {
						e.alive[ix] = true
						break
					}
				}
			}
			if e.hasEvent(i, q) {
				e.jump[ix] = int32(i)
				e.jumpState[ix] = int32(q)
			} else if steps != nil && steps[q] >= 0 {
				e.jump[ix] = e.jump[at(i+1, int(steps[q]))]
				e.jumpState[ix] = e.jumpState[at(i+1, int(steps[q]))]
			} else {
				e.jump[ix] = -1
				e.jumpState[ix] = -1
			}
		}
	}
	return e
}

// hasEvent reports whether some mask can fire at (q, i) leading to a
// configuration that completes without another mask at i.
func (e *Enumerator) hasEvent(i, q int) bool {
	nq := e.c.NQ
	for _, me := range e.c.MaskEdges[q] {
		if e.aliveNoMask[i*nq+int(me.To)] {
			return true
		}
	}
	return false
}

// event is one marker-set firing.
type event struct {
	boundary int // 0-based boundary index (markers precede letter boundary)
	mask     automata.Mask
}

// Each enumerates all tuples of the spanner on the document, calling f for
// each; enumeration stops early if f returns false. Tuples are distinct
// (the deterministic automaton assigns one run per tuple).
func (e *Enumerator) Each(f func(t spans.Tuple) bool) {
	events := make([]event, 0, 2*len(e.d.Index.Vars())+1)
	e.dfs(e.d.Start, 0, events, f)
}

// dfs enumerates all accepting runs from state q at boundary i (no mask
// taken at i yet), with events collected so far. Returns false if the
// callback aborted.
func (e *Enumerator) dfs(q, i int, events []event, f func(spans.Tuple) bool) bool {
	nq := e.c.NQ
	if e.finishable[i*nq+q] {
		if !f(e.tuple(events)) {
			return false
		}
	}
	n := len(e.doc)
	for {
		j := e.jump[i*nq+q]
		if j < 0 {
			return true
		}
		qj := int(e.jumpState[i*nq+q])
		jb := int(j)
		for _, me := range e.c.MaskEdges[qj] {
			if !e.aliveNoMask[jb*nq+int(me.To)] {
				continue
			}
			ev := append(events, event{jb, me.Mask})
			if jb == n {
				if !f(e.tuple(ev)) {
					return false
				}
				continue
			}
			s := e.c.Step(int(me.To), e.doc[jb])
			if !e.dfs(int(s), jb+1, ev, f) {
				return false
			}
		}
		if jb == n {
			return true
		}
		s := e.c.Step(qj, e.doc[jb])
		if s < 0 {
			return true
		}
		q, i = int(s), jb+1
	}
}

// tuple converts an event list into a span tuple.
func (e *Enumerator) tuple(events []event) spans.Tuple {
	t := make(spans.Tuple)
	ix := e.d.Index
	for _, ev := range events {
		pos := ev.boundary + 1 // 1-based document position
		for _, mk := range ix.Markers(ev.mask) {
			if mk.Close {
				s := t[mk.Var]
				s.End = pos
				t[mk.Var] = s
			} else {
				t[mk.Var] = spans.S(pos, pos)
			}
		}
	}
	return t
}

// EachTotal is Each restricted to tuples that assign every variable of
// vars — the functional-semantics view of the enumeration. The filter
// runs inside the constant-delay walk, so callers needing functional
// results don't materialize the schemaless relation first.
func (e *Enumerator) EachTotal(vars spans.VarSet, f func(t spans.Tuple) bool) {
	e.Each(func(t spans.Tuple) bool {
		if !t.TotalOn(vars) {
			return true
		}
		return f(t)
	})
}

// Count returns the number of result tuples.
func (e *Enumerator) Count() int {
	n := 0
	e.Each(func(spans.Tuple) bool { n++; return true })
	return n
}

// All materializes the full relation (mainly for tests; defeats the point
// of enumeration on large outputs).
func (e *Enumerator) All() *spans.Relation {
	out := spans.NewRelation()
	e.Each(func(t spans.Tuple) bool { out.Add(t); return true })
	return out
}
