// Package enum implements the enumeration problem for regular spanners
// (Section 2.5 of Schmid and Schweikardt's PODS 2022 survey): after a
// preprocessing phase LINEAR in the document length, all result tuples are
// enumerated without repetition with CONSTANT delay in data complexity.
//
// The algorithm follows Florenzano, Riveros, Ugarte, Vansummeren, and
// Vrgoč (ACM TODS 2020): the spanner is first compiled into a
// deterministic extended vset-automaton (query complexity only — this cost
// vanishes in data complexity, as the survey notes), the preprocessing
// computes per-position liveness and jump tables over the product of
// automaton states and document positions, and the enumeration phase walks
// only "event boundaries" — positions where a marker set can fire on some
// accepting run — skipping deterministic letter-only stretches in O(1) via
// the jump pointers. Every node of the search tree is live (leads to at
// least one output), so the delay between consecutive tuples is bounded by
// the automaton size and variable count, independent of the document.
package enum

import (
	"sync"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// Liveness flags of one (boundary, state) table cell, packed into one
// byte so the preprocessing fills a third of the memory the three
// separate bool tables used to.
const (
	fAliveNoMask = 1 << iota // accepting run from (q,i) whose next action is a letter (or i=n and final)
	fAlive                   // accepting run from (q,i), mask at i still allowed
	fFinishable              // pure-letter run from (q,i) to acceptance, no further masks
)

// Enumerator holds the preprocessed data structures for one (spanner,
// document) pair. After NewEnumerator returns, the tables are read-only:
// Each, Count, and All may run concurrently from multiple goroutines, and
// several Enumerators may share one DEVA (which Determinize returns fully
// built and is never mutated here; its dense compilation is hash-consed
// across Enumerators).
type Enumerator struct {
	d   *automata.DEVA
	c   *automata.CompiledDEVA
	doc []byte

	// Flat (n+1)×Q tables, indexed [i*nq+q].
	flags     []uint8 // fAliveNoMask | fAlive | fFinishable
	jump      []int32 // next boundary ≥ i with a live mask event, following letters; -1 if none
	jumpState []int32 // automaton state at that boundary

	tabs *enumTables // pooled backing storage of the tables above
}

// tablePool recycles preprocessing tables between Enumerators: one
// request's O(|doc|·|Q|) tables serve the next request instead of the
// garbage collector. Release hands them back.
var tablePool sync.Pool // *enumTables

type enumTables struct {
	flags []uint8
	ints  []int32 // jump and jumpState, one backing array
}

func getTables(cells int) *enumTables {
	if v := tablePool.Get(); v != nil {
		t := v.(*enumTables)
		if cap(t.flags) >= cells && cap(t.ints) >= 2*cells {
			t.flags = t.flags[:cells]
			t.ints = t.ints[:2*cells]
			return t
		}
	}
	return &enumTables{flags: make([]uint8, cells), ints: make([]int32, 2*cells)}
}

// Release returns the preprocessing tables to the shared pool. The
// Enumerator must not be used afterwards; tuples already produced remain
// valid (they never reference the tables). Callers that let an
// Enumerator go out of scope without Release just fall back to the
// garbage collector.
func (e *Enumerator) Release() {
	if e.tabs == nil {
		return
	}
	tablePool.Put(e.tabs)
	e.tabs, e.flags, e.jump, e.jumpState = nil, nil, nil, nil
}

// NewEnumerator runs the preprocessing phase: time and space O(|doc|·|Q|)
// for the fixed automaton (linear in the document). Transitions are read
// from the dense compiled tables, not the construction-time maps. The
// tables come from a shared pool; call Release when done with the
// Enumerator to recycle them (optional but cheap).
func NewEnumerator(d *automata.DEVA, doc []byte) *Enumerator {
	n := len(doc)
	c := d.Compiled()
	nq := c.NQ
	cells := (n + 1) * nq
	t := getTables(cells)
	e := &Enumerator{
		d:         d,
		c:         c,
		doc:       doc,
		flags:     t.flags,
		jump:      t.ints[:cells:cells],
		jumpState: t.ints[cells : 2*cells : 2*cells],
		tabs:      t,
	}
	// The letter-step fill below only writes cells with a live letter
	// transition; everything else must read as zero.
	clear(e.flags)

	// Boundary n.
	base := n * nq
	for q := 0; q < nq; q++ {
		if c.Final[q] {
			e.flags[base+q] = fAliveNoMask | fFinishable
		}
	}
	for q := 0; q < nq; q++ {
		ix := base + q
		alive := e.flags[ix]&fAliveNoMask != 0
		if !alive {
			for _, me := range c.MaskEdges[q] {
				if e.flags[base+int(me.To)]&fAliveNoMask != 0 {
					alive = true
					break
				}
			}
		}
		if alive {
			e.flags[ix] |= fAlive
		}
		if e.hasEvent(n, q) {
			e.jump[ix] = int32(n)
			e.jumpState[ix] = int32(q)
		} else {
			e.jump[ix] = -1
			e.jumpState[ix] = -1
		}
	}

	// Boundaries n-1 .. 0. steps is the dense successor row for the
	// letter at i (nil when the automaton never reads that byte).
	for i := n - 1; i >= 0; i-- {
		steps := c.StepsFor(e.doc[i])
		row := e.flags[i*nq : (i+1)*nq]
		next := e.flags[(i+1)*nq : (i+2)*nq]
		if steps != nil {
			// fAliveNoMask of (q,i) = fAlive of (step(q),i+1);
			// fFinishable propagates unchanged along the letter edge.
			for q := 0; q < nq; q++ {
				if s := steps[q]; s >= 0 {
					var f uint8
					if next[s]&fAlive != 0 {
						f = fAliveNoMask
					}
					row[q] = f | next[s]&fFinishable
				}
			}
		}
		for q := 0; q < nq; q++ {
			ix := i*nq + q
			alive := row[q]&fAliveNoMask != 0
			if !alive {
				for _, me := range c.MaskEdges[q] {
					if row[int(me.To)]&fAliveNoMask != 0 {
						alive = true
						break
					}
				}
			}
			if alive {
				row[q] |= fAlive
			}
			if e.hasEvent(i, q) {
				e.jump[ix] = int32(i)
				e.jumpState[ix] = int32(q)
			} else if steps != nil && steps[q] >= 0 {
				e.jump[ix] = e.jump[(i+1)*nq+int(steps[q])]
				e.jumpState[ix] = e.jumpState[(i+1)*nq+int(steps[q])]
			} else {
				e.jump[ix] = -1
				e.jumpState[ix] = -1
			}
		}
	}
	return e
}

// hasEvent reports whether some mask can fire at (q, i) leading to a
// configuration that completes without another mask at i.
func (e *Enumerator) hasEvent(i, q int) bool {
	nq := e.c.NQ
	for _, me := range e.c.MaskEdges[q] {
		if e.flags[i*nq+int(me.To)]&fAliveNoMask != 0 {
			return true
		}
	}
	return false
}

// event is one marker-set firing.
type event struct {
	boundary int // 0-based boundary index (markers precede letter boundary)
	mask     automata.Mask
}

// Each enumerates all tuples of the spanner on the document, calling f for
// each; enumeration stops early if f returns false. Tuples are distinct
// (the deterministic automaton assigns one run per tuple).
func (e *Enumerator) Each(f func(t spans.Tuple) bool) {
	events := make([]event, 0, 2*len(e.d.Index.Vars())+1)
	e.dfs(e.d.Start, 0, events, f)
}

// dfs enumerates all accepting runs from state q at boundary i (no mask
// taken at i yet), with events collected so far. Returns false if the
// callback aborted.
func (e *Enumerator) dfs(q, i int, events []event, f func(spans.Tuple) bool) bool {
	nq := e.c.NQ
	if e.flags[i*nq+q]&fFinishable != 0 {
		if !f(e.tuple(events)) {
			return false
		}
	}
	n := len(e.doc)
	for {
		j := e.jump[i*nq+q]
		if j < 0 {
			return true
		}
		qj := int(e.jumpState[i*nq+q])
		jb := int(j)
		for _, me := range e.c.MaskEdges[qj] {
			if e.flags[jb*nq+int(me.To)]&fAliveNoMask == 0 {
				continue
			}
			ev := append(events, event{jb, me.Mask})
			if jb == n {
				if !f(e.tuple(ev)) {
					return false
				}
				continue
			}
			s := e.c.Step(int(me.To), e.doc[jb])
			if !e.dfs(int(s), jb+1, ev, f) {
				return false
			}
		}
		if jb == n {
			return true
		}
		s := e.c.Step(qj, e.doc[jb])
		if s < 0 {
			return true
		}
		q, i = int(s), jb+1
	}
}

// tuple converts an event list into a span tuple.
func (e *Enumerator) tuple(events []event) spans.Tuple {
	t := make(spans.Tuple, len(e.d.Index.Vars()))
	for _, ev := range events {
		pos := ev.boundary + 1 // 1-based document position
		for _, mk := range e.c.Markers(ev.mask) {
			if mk.Close {
				s := t[mk.Var]
				s.End = pos
				t[mk.Var] = s
			} else {
				t[mk.Var] = spans.S(pos, pos)
			}
		}
	}
	return t
}

// EachTotal is Each restricted to tuples that assign every variable of
// vars — the functional-semantics view of the enumeration. The filter
// runs inside the constant-delay walk, so callers needing functional
// results don't materialize the schemaless relation first.
func (e *Enumerator) EachTotal(vars spans.VarSet, f func(t spans.Tuple) bool) {
	e.Each(func(t spans.Tuple) bool {
		if !t.TotalOn(vars) {
			return true
		}
		return f(t)
	})
}

// Count returns the number of result tuples. It runs the tuple-free
// counting walk — no tuples are materialized.
func (e *Enumerator) Count() int {
	n, _ := e.CountTotal(nil, nil)
	return n
}

// CountTotal counts the tuples that assign every variable of vars (all
// tuples when vars is empty) without building a single tuple: the walk
// accumulates the fired masks and tests the open-marker bits against
// vars, because a valid run opens a variable iff it assigns it. poll, if
// non-nil, runs once per counted tuple; returning false aborts the walk,
// reporting complete=false alongside the partial count.
func (e *Enumerator) CountTotal(vars spans.VarSet, poll func() bool) (n int, complete bool) {
	need, ok := e.d.Index.OpenBits(vars)
	if !ok {
		return 0, true
	}
	return e.countWalk(e.d.Start, 0, 0, need, 0, poll)
}

// countWalk is the dfs walk with the event list replaced by the
// accumulated mask — constant space per tuple, no allocation at all.
func (e *Enumerator) countWalk(q, i int, acc, need automata.Mask, n int, poll func() bool) (int, bool) {
	nq := e.c.NQ
	if e.flags[i*nq+q]&fFinishable != 0 && acc&need == need {
		n++
		if poll != nil && !poll() {
			return n, false
		}
	}
	ln := len(e.doc)
	for {
		j := e.jump[i*nq+q]
		if j < 0 {
			return n, true
		}
		qj := int(e.jumpState[i*nq+q])
		jb := int(j)
		for _, me := range e.c.MaskEdges[qj] {
			if e.flags[jb*nq+int(me.To)]&fAliveNoMask == 0 {
				continue
			}
			if jb == ln {
				if (acc|me.Mask)&need == need {
					n++
					if poll != nil && !poll() {
						return n, false
					}
				}
				continue
			}
			s := e.c.Step(int(me.To), e.doc[jb])
			var done bool
			n, done = e.countWalk(int(s), jb+1, acc|me.Mask, need, n, poll)
			if !done {
				return n, false
			}
		}
		if jb == ln {
			return n, true
		}
		s := e.c.Step(qj, e.doc[jb])
		if s < 0 {
			return n, true
		}
		q, i = int(s), jb+1
	}
}

// All materializes the full relation (mainly for tests; defeats the point
// of enumeration on large outputs).
func (e *Enumerator) All() *spans.Relation {
	out := spans.NewRelation()
	e.Each(func(t spans.Tuple) bool { out.Add(t); return true })
	return out
}
