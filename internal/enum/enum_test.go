package enum

import (
	"math/rand"
	"testing"

	"docspanner/internal/automata"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

func deva(t *testing.T, src string) (*automata.NFA, *automata.DEVA) {
	t.Helper()
	n, err := regex.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte("ab")})
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return a, automata.Determinize(a)
}

func TestEnumExample11(t *testing.T) {
	nfa, d := deva(t, "!x{(a|b)*}!y{b}!z{(a|b)*}")
	doc := []byte("ababbab")
	e := NewEnumerator(d, doc)
	got := e.All()
	want := vset.Eval(nfa, doc, vset.Schemaless)
	if !got.Equal(want) {
		t.Errorf("enum = %v\nwant %v", got, want)
	}
	if e.Count() != 4 {
		t.Errorf("Count = %d, want 4", e.Count())
	}
}

func TestEnumAgainstNaive(t *testing.T) {
	exprs := []string{
		"!x{(a|b)*}!y{b}!z{(a|b)*}",
		"!x{a*}!y{b*}",
		".*!x{ab}.*",
		"!x{(a|b)*}",
		"!x{()}.*",          // empty span anywhere... bound at start only
		".*!x{()}.*",        // empty span at every position
		"!x{a+}(!y{b+})?.*", // optional binding (schemaless)
		"(!x{aa}|!x{bb}).*", // alternation bindings
		"a!x{.*}b|b!x{.*}a", // distinct contexts
	}
	docs := []string{"", "a", "b", "ab", "abab", "aabba", "bbbbbb", "abaabbab"}
	for _, src := range exprs {
		nfa, d := deva(t, src)
		for _, doc := range docs {
			e := NewEnumerator(d, []byte(doc))
			got := e.All()
			want := vset.Eval(nfa, []byte(doc), vset.Schemaless)
			if !got.Equal(want) {
				t.Errorf("%q on %q:\n enum %v\nnaive %v", src, doc, got, want)
			}
		}
	}
}

// CountTotal must agree with filtering the enumerated tuples, for every
// variable subset, and count without allocating.
func TestCountTotalMatchesEach(t *testing.T) {
	exprs := []string{
		"!x{(a|b)*}!y{b}!z{(a|b)*}",
		"!x{a+}(!y{b+})?.*",
		"(!x{aa}|!x{bb}).*",
		".*!x{()}.*",
	}
	docs := []string{"", "ab", "abab", "aabba", "abaabbab"}
	varSets := []spans.VarSet{nil, spans.NewVarSet("x"), spans.NewVarSet("y"), spans.NewVarSet("x", "y"), spans.NewVarSet("nope")}
	for _, src := range exprs {
		_, d := deva(t, src)
		for _, doc := range docs {
			e := NewEnumerator(d, []byte(doc))
			for _, vars := range varSets {
				want := 0
				e.EachTotal(vars, func(spans.Tuple) bool { want++; return true })
				got, complete := e.CountTotal(vars, nil)
				if got != want || !complete {
					t.Errorf("%q on %q vars %v: CountTotal = %d (complete=%v), want %d", src, doc, vars, got, complete, want)
				}
			}
		}
	}
}

func TestCountTotalPollAborts(t *testing.T) {
	_, d := deva(t, ".*!x{a*}.*")
	e := NewEnumerator(d, []byte("aaaaaaaa"))
	total := e.Count()
	if total < 10 {
		t.Fatalf("test needs a larger result, got %d", total)
	}
	seen := 0
	n, complete := e.CountTotal(nil, func() bool { seen++; return seen < 5 })
	if complete || n != 5 {
		t.Errorf("aborted CountTotal = (%d, %v), want (5, false)", n, complete)
	}
}

func TestCountWalkAllocFree(t *testing.T) {
	_, d := deva(t, "!x{(a|b)*}!y{b}!z{(a|b)*}")
	e := NewEnumerator(d, []byte("abababbaab"))
	if allocs := testing.AllocsPerRun(10, func() { e.Count() }); allocs > 0 {
		t.Errorf("Count allocates %.1f times per run, want 0", allocs)
	}
}

func TestEnumeratorRelease(t *testing.T) {
	_, d := deva(t, "!x{a+}.*")
	for i := 0; i < 3; i++ {
		e := NewEnumerator(d, []byte("aabab"))
		want := e.Count()
		e.Release()
		e2 := NewEnumerator(d, []byte("aabab"))
		if got := e2.Count(); got != want {
			t.Fatalf("count after table reuse = %d, want %d", got, want)
		}
		e2.Release()
	}
}

func TestEnumNoDuplicates(t *testing.T) {
	_, d := deva(t, ".*!x{a*}.*")
	doc := []byte("aaaa")
	e := NewEnumerator(d, doc)
	seen := map[string]bool{}
	e.Each(func(tp spans.Tuple) bool {
		k := tp.Key()
		if seen[k] {
			t.Errorf("duplicate tuple %v", tp)
		}
		seen[k] = true
		return true
	})
}

func TestEnumEarlyStop(t *testing.T) {
	_, d := deva(t, ".*!x{a}.*")
	doc := []byte("aaaaaaaa")
	e := NewEnumerator(d, doc)
	n := 0
	e.Each(func(spans.Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop after %d outputs", n)
	}
}

func TestEnumEmptyResult(t *testing.T) {
	_, d := deva(t, "!x{a}")
	e := NewEnumerator(d, []byte("b"))
	if e.Count() != 0 {
		t.Error("expected empty result")
	}
	e2 := NewEnumerator(d, nil)
	if e2.Count() != 0 {
		t.Error("expected empty result on empty doc")
	}
}

func TestEnumEmptyDocument(t *testing.T) {
	_, d := deva(t, "!x{a*}")
	e := NewEnumerator(d, nil)
	got := e.All()
	if got.Len() != 1 || !got.Contains(spans.NewTuple("x", spans.S(1, 1))) {
		t.Errorf("enum on empty doc = %v", got)
	}
}

func TestEnumRandomCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(20220612))
	exprs := []string{
		"!x{(a|b)+}!y{(a|b)+}",
		".*a!x{b*}a.*",
		"!x{.*}!y{.*}",
	}
	for _, src := range exprs {
		nfa, d := deva(t, src)
		for trial := 0; trial < 20; trial++ {
			n := rng.Intn(10) + 1
			doc := make([]byte, n)
			for i := range doc {
				doc[i] = "ab"[rng.Intn(2)]
			}
			e := NewEnumerator(d, doc)
			got := e.All()
			want := vset.Eval(nfa, doc, vset.Schemaless)
			if !got.Equal(want) {
				t.Fatalf("%q on %q:\n enum %v\nnaive %v", src, doc, got, want)
			}
		}
	}
}

// TestEnumDelayIndependentOfDocument sanity-checks the constant-delay
// property: the number of elementary search steps between consecutive
// outputs must not grow with the document. We proxy "steps" by counting
// dfs loop iterations via a tiny instrumented run at two document sizes.
func TestEnumLinearPreprocessingShape(t *testing.T) {
	_, d := deva(t, ".*!x{ab}.*")
	small := NewEnumerator(d, docOf(1<<8))
	large := NewEnumerator(d, docOf(1<<12))
	// Outputs scale linearly with n for this spanner; just verify both
	// agree with the expected count: one tuple per "ab" occurrence.
	if small.Count() != countAB(docOf(1<<8)) || large.Count() != countAB(docOf(1<<12)) {
		t.Error("count mismatch on periodic document")
	}
}

func docOf(n int) []byte {
	doc := make([]byte, n)
	for i := range doc {
		doc[i] = "ab"[i%2]
	}
	return doc
}

func countAB(doc []byte) int {
	c := 0
	for i := 0; i+1 < len(doc); i++ {
		if doc[i] == 'a' && doc[i+1] == 'b' {
			c++
		}
	}
	return c
}

// TestEnumDeterministicOrder: two runs produce the same sequence, and the
// sequence is sorted by (first event boundary, mask value, ...).
func TestEnumDeterministicOrder(t *testing.T) {
	_, d := deva(t, ".*!x{a(a|b)?}.*")
	doc := []byte("aabab")
	run := func() []string {
		var out []string
		e := NewEnumerator(d, doc)
		e.Each(func(tp spans.Tuple) bool {
			out = append(out, tp.Key())
			return true
		})
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestFastCountMatchesEnumeration(t *testing.T) {
	exprs := []string{
		"!x{(a|b)*}!y{b}!z{(a|b)*}",
		".*!x{a+}.*",
		"!x{a*}(!y{b})?",
	}
	for _, src := range exprs {
		_, d := deva(t, src)
		for _, doc := range []string{"", "a", "ab", "abab", "bbbb", "aabba"} {
			e := NewEnumerator(d, []byte(doc))
			if got := FastCount(d, []byte(doc)); got.Int64() != int64(e.Count()) {
				t.Errorf("%q on %q: FastCount = %v, enum = %d", src, doc, got, e.Count())
			}
		}
	}
}

// BenchmarkNewEnumerator measures the preprocessing phase alone — the
// dominant per-request cost of /count and /stream on plain documents.
func BenchmarkNewEnumerator(b *testing.B) {
	n, err := regex.Parse(".*!x{ab}.*")
	if err != nil {
		b.Fatal(err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte("ab")})
	if err != nil {
		b.Fatal(err)
	}
	d := automata.Determinize(a)
	rng := rand.New(rand.NewSource(99))
	doc := make([]byte, 1<<12)
	for i := range doc {
		doc[i] = "ab"[rng.Intn(2)]
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEnumerator(d, doc)
		e.Release()
	}
}

// TestCountTotalFastMatchesWalk pins the output-independent counting DP
// to the mask-accumulating walk for every variable subset, and checks
// the poll hook aborts it.
func TestCountTotalFastMatchesWalk(t *testing.T) {
	exprs := []string{
		"!x{(a|b)*}!y{b}!z{(a|b)*}",
		"!x{a+}(!y{b+})?.*",
		"(!x{aa}|!x{bb}).*",
		".*!x{()}.*",
		".*!x{ab}.*",
	}
	docs := []string{"", "a", "ab", "abab", "aabba", "abaabbab", "bbbbbbbbbb"}
	varSets := []spans.VarSet{nil, spans.NewVarSet("x"), spans.NewVarSet("y"), spans.NewVarSet("x", "y"), spans.NewVarSet("nope")}
	for _, src := range exprs {
		_, d := deva(t, src)
		for _, doc := range docs {
			e := NewEnumerator(d, []byte(doc))
			for _, vars := range varSets {
				want, _ := e.CountTotal(vars, nil)
				got, complete, ok := CountTotalFast(d, []byte(doc), vars, nil)
				if !ok || !complete || got != want {
					t.Errorf("%q on %q vars %v: CountTotalFast = (%d, %v, %v), want (%d, true, true)", src, doc, vars, got, complete, ok, want)
				}
			}
			e.Release()
		}
	}

	_, d := deva(t, ".*!x{ab}.*")
	if n, complete, ok := CountTotalFast(d, []byte("ababab"), nil, func() bool { return false }); !ok || complete || n != 0 {
		t.Errorf("aborted CountTotalFast = (%d, %v, %v), want (0, false, true)", n, complete, ok)
	}
}
