package enum

import (
	"math"
	"math/big"
	"math/bits"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// FastCount returns the exact number of result tuples of the spanner on
// doc WITHOUT enumerating them: a dynamic program over (state, position)
// counts the accepting runs of the deterministic extended vset-automaton,
// and determinism makes runs and tuples coincide. Time O(|doc|·|Q|·|δ|),
// independent of the output size — the counting analogue of the
// enumeration result (answer counting for spanners is studied in the
// literature the survey builds on; for deterministic automata it is this
// easy, while for nondeterministic representations it is #P-hard).
func FastCount(d *automata.DEVA, doc []byte) *big.Int {
	n := len(doc)
	c := d.Compiled()
	nq := c.NQ

	// runs[q] = number of accepting runs from (q, i) with a mask allowed
	// at boundary i; computed backwards. noMask[q] = runs whose next
	// action is the letter at i (or acceptance at i = n).
	runs := make([]*big.Int, nq)
	noMask := make([]*big.Int, nq)
	next := make([]*big.Int, nq)
	for q := 0; q < nq; q++ {
		runs[q] = new(big.Int)
		noMask[q] = new(big.Int)
		next[q] = new(big.Int)
	}

	// Boundary n.
	for q := 0; q < nq; q++ {
		if c.Final[q] {
			noMask[q].SetInt64(1)
		} else {
			noMask[q].SetInt64(0)
		}
	}
	combine := func() {
		for q := 0; q < nq; q++ {
			runs[q].Set(noMask[q])
			for _, me := range c.MaskEdges[q] {
				runs[q].Add(runs[q], noMask[me.To])
			}
		}
	}
	combine()

	for i := n - 1; i >= 0; i-- {
		steps := c.StepsFor(doc[i])
		// next holds runs[] of boundary i+1.
		for q := 0; q < nq; q++ {
			next[q].Set(runs[q])
		}
		for q := 0; q < nq; q++ {
			if steps != nil && steps[q] >= 0 {
				noMask[q].Set(next[steps[q]])
			} else {
				noMask[q].SetInt64(0)
			}
		}
		combine()
	}
	return new(big.Int).Set(runs[c.Start])
}

// maxDPCells bounds the (covered-subset × state) space of CountTotalFast:
// past it the DP rows stop fitting in cache and the enumeration walk is
// the safer bet.
const maxDPCells = 4096

// CountTotalFast counts the tuples that assign every variable of vars —
// the same quantity as Enumerator.CountTotal — by dynamic programming
// over (state, covered-variable subset) pairs, with NO preprocessing
// tables and NO per-tuple work: time O(|doc|·|Q|·2^k·|δ|) for k required
// variables, independent of the output size. Determinism again makes
// runs and tuples coincide; the subset dimension tracks which of the
// required variables the suffix still opens, so the functional filter of
// CountTotal folds into the DP instead of being tested per run.
//
// ok is false when the DP declines — too many required variables for
// the subset table, or the count overflows int64 — and the caller must
// fall back to the walk. poll, if non-nil, is a cancellation hook
// invoked every few thousand document positions (a poll is a channel
// select — per-position polling would cost more than the DP row it
// guards); if it returns false the DP aborts with (0, false, true):
// applicable but cancelled, count unknown.
func CountTotalFast(d *automata.DEVA, doc []byte, vars spans.VarSet, poll func() bool) (n int, complete, ok bool) {
	need, has := d.Index.OpenBits(vars)
	if !has {
		return 0, true, true // a required variable the spanner never binds
	}
	c := d.Compiled()
	nq := c.NQ
	k := bits.OnesCount64(uint64(need))
	w := 1 << k
	if w*nq > maxDPCells {
		return 0, false, false
	}

	// Compress the sparse need bits to a dense subset index; OR commutes
	// with the remap, so subset unions stay cheap in compressed space.
	var needBit [64]int
	bi := 0
	for m := uint64(need); m != 0; m &= m - 1 {
		needBit[bits.TrailingZeros64(m)] = bi
		bi++
	}
	compress := func(m automata.Mask) int {
		s := 0
		for r := uint64(m) & uint64(need); r != 0; r &= r - 1 {
			s |= 1 << needBit[bits.TrailingZeros64(r)]
		}
		return s
	}

	// The mask edges, flattened once with their compressed subset
	// contribution — the inner loop touches no per-state slices.
	type dpEdge struct{ q, to, cm int32 }
	var edges []dpEdge
	for q := 0; q < nq; q++ {
		for _, me := range c.MaskEdges[q] {
			edges = append(edges, dpEdge{int32(q), me.To, int32(compress(me.Mask))})
		}
	}

	// runs[S*nq+q]: accepting runs from (q, boundary) with a mask still
	// allowed, whose suffix covers exactly subset S of the required
	// variables. noMask: same, next action is a letter (or acceptance).
	size := w * nq
	runs := make([]uint64, size)
	noMask := make([]uint64, size)
	for q := 0; q < nq; q++ {
		if c.Final[q] {
			noMask[q] = 1 // subset 0: an accepting suffix opens nothing
		}
	}
	combine := func() bool {
		copy(runs, noMask)
		for _, e := range edges {
			for s := int32(0); s < int32(w); s++ {
				ix := (s|e.cm)*int32(nq) + e.q
				v := runs[ix] + noMask[s*int32(nq)+e.to]
				if v < runs[ix] || v > math.MaxInt64 {
					return false
				}
				runs[ix] = v
			}
		}
		return true
	}
	if !combine() {
		return 0, false, false
	}
	for i := len(doc) - 1; i >= 0; i-- {
		if i&4095 == 0 && poll != nil && !poll() {
			return 0, false, true
		}
		steps := c.StepsFor(doc[i])
		if steps == nil {
			clear(noMask)
		} else {
			for s := 0; s < w; s++ {
				row := noMask[s*nq : (s+1)*nq]
				prev := runs[s*nq : (s+1)*nq]
				for q := 0; q < nq; q++ {
					if t := steps[q]; t >= 0 {
						row[q] = prev[t]
					} else {
						row[q] = 0
					}
				}
			}
		}
		if !combine() {
			return 0, false, false
		}
	}
	return int(runs[(w-1)*nq+c.Start]), true, true
}
