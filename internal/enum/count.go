package enum

import (
	"math/big"

	"docspanner/internal/automata"
)

// FastCount returns the exact number of result tuples of the spanner on
// doc WITHOUT enumerating them: a dynamic program over (state, position)
// counts the accepting runs of the deterministic extended vset-automaton,
// and determinism makes runs and tuples coincide. Time O(|doc|·|Q|·|δ|),
// independent of the output size — the counting analogue of the
// enumeration result (answer counting for spanners is studied in the
// literature the survey builds on; for deterministic automata it is this
// easy, while for nondeterministic representations it is #P-hard).
func FastCount(d *automata.DEVA, doc []byte) *big.Int {
	n := len(doc)
	c := d.Compiled()
	nq := c.NQ

	// runs[q] = number of accepting runs from (q, i) with a mask allowed
	// at boundary i; computed backwards. noMask[q] = runs whose next
	// action is the letter at i (or acceptance at i = n).
	runs := make([]*big.Int, nq)
	noMask := make([]*big.Int, nq)
	next := make([]*big.Int, nq)
	for q := 0; q < nq; q++ {
		runs[q] = new(big.Int)
		noMask[q] = new(big.Int)
		next[q] = new(big.Int)
	}

	// Boundary n.
	for q := 0; q < nq; q++ {
		if c.Final[q] {
			noMask[q].SetInt64(1)
		} else {
			noMask[q].SetInt64(0)
		}
	}
	combine := func() {
		for q := 0; q < nq; q++ {
			runs[q].Set(noMask[q])
			for _, me := range c.MaskEdges[q] {
				runs[q].Add(runs[q], noMask[me.To])
			}
		}
	}
	combine()

	for i := n - 1; i >= 0; i-- {
		steps := c.StepsFor(doc[i])
		// next holds runs[] of boundary i+1.
		for q := 0; q < nq; q++ {
			next[q].Set(runs[q])
		}
		for q := 0; q < nq; q++ {
			if steps != nil && steps[q] >= 0 {
				noMask[q].Set(next[steps[q]])
			} else {
				noMask[q].SetInt64(0)
			}
		}
		combine()
	}
	return new(big.Int).Set(runs[c.Start])
}
