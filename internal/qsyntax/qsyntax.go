// Package qsyntax parses the textual query syntax shared by the
// command-line tools (cmd/spanlint, cmd/spanql) and the spannerd server:
// either a raw spanner pattern, or a core-spanner algebra expression in
// a small prefix syntax whose operands are separated by semicolons:
//
//	union(E; E)        spanner union
//	join(E; E)         natural join
//	project(x,y; E)    projection onto the listed variables
//	seleq(x,y; E)      string-equality selection over the listed variables
//	minus(P; P)        spanner difference of two raw patterns
//
// where each E is again an expression or a raw pattern, e.g.
//
//	project(v; join(!x{[a-z]+}=!v{[0-9]+}; !x{key}=[0-9]+))
//
// A raw pattern that itself starts with one of the operator keywords
// immediately followed by "(" must be wrapped in a group, e.g.
// '(union(a))'.
package qsyntax

import (
	"fmt"
	"strings"

	"docspanner"
)

// IsExpr reports whether the input uses the prefix operator syntax
// (starts with one of the algebra keywords immediately followed by an
// opening parenthesis) rather than being a raw spanner pattern.
func IsExpr(src string) bool {
	src = strings.TrimSpace(src)
	for _, kw := range []string{"union", "join", "project", "seleq", "minus"} {
		if strings.HasPrefix(src, kw+"(") {
			return true
		}
	}
	return false
}

// ParseExpr parses a prefix algebra expression into a query, rejecting
// trailing input. Raw-pattern operands compile with the given options.
func ParseExpr(src string, opts docspanner.Options) (*docspanner.Query, error) {
	p := &parser{src: strings.TrimSpace(src), opts: opts}
	q, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return q, nil
}

// Parse turns an input in either syntax into a query: prefix expressions
// go through ParseExpr, raw patterns are compiled and lifted (refl
// patterns via the AutoToCore translation, so reference-bounded
// refl-spanners are accepted too).
func Parse(src string, opts docspanner.Options) (*docspanner.Query, error) {
	if IsExpr(src) {
		return ParseExpr(src, opts)
	}
	s, err := docspanner.Compile(strings.TrimSpace(src), opts)
	if err != nil {
		return nil, err
	}
	return docspanner.NewQuery(s, docspanner.QueryOptions{AutoToCore: true})
}

// parser is a recursive-descent parser for the prefix expression syntax.
type parser struct {
	src  string
	pos  int
	opts docspanner.Options
}

func (p *parser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) expect(c byte) error {
	p.ws()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *parser) expr() (*docspanner.Query, error) {
	p.ws()
	rest := p.src[p.pos:]
	switch {
	case strings.HasPrefix(rest, "union("):
		return p.binary("union", (*docspanner.Query).Union)
	case strings.HasPrefix(rest, "join("):
		return p.binary("join", (*docspanner.Query).Join)
	case strings.HasPrefix(rest, "project("):
		return p.varOp("project", func(q *docspanner.Query, vars []docspanner.Var) *docspanner.Query {
			return q.Project(vars...)
		})
	case strings.HasPrefix(rest, "seleq("):
		return p.varOp("seleq", func(q *docspanner.Query, vars []docspanner.Var) *docspanner.Query {
			return q.SelectEqual(vars...)
		})
	case strings.HasPrefix(rest, "minus("):
		return p.minus()
	}
	return p.pattern()
}

func (p *parser) binary(kw string, op func(*docspanner.Query, *docspanner.Query) *docspanner.Query) (*docspanner.Query, error) {
	p.pos += len(kw) + 1 // keyword and "("
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(';'); err != nil {
		return nil, fmt.Errorf("%s: %w", kw, err)
	}
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, fmt.Errorf("%s: %w", kw, err)
	}
	return op(l, r), nil
}

func (p *parser) varOp(kw string, op func(*docspanner.Query, []docspanner.Var) *docspanner.Query) (*docspanner.Query, error) {
	p.pos += len(kw) + 1
	vars, err := p.varList()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", kw, err)
	}
	if err := p.expect(';'); err != nil {
		return nil, fmt.Errorf("%s: %w", kw, err)
	}
	sub, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, fmt.Errorf("%s: %w", kw, err)
	}
	return op(sub, vars), nil
}

// varList parses a possibly empty comma-separated variable list, up to
// (but not consuming) the ';' separator.
func (p *parser) varList() ([]docspanner.Var, error) {
	p.ws()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ';' && p.src[p.pos] != ')' {
		p.pos++
	}
	raw := strings.TrimSpace(p.src[start:p.pos])
	if raw == "" {
		return nil, nil
	}
	var vars []docspanner.Var
	for _, name := range strings.Split(raw, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("empty variable name in list %q", raw)
		}
		vars = append(vars, docspanner.Var(name))
	}
	return vars, nil
}

// minus parses minus(P; P) where both operands are raw patterns, and
// builds the spanner difference P1 ∖ P2.
func (p *parser) minus() (*docspanner.Query, error) {
	p.pos += len("minus") + 1
	a, err := p.compileOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expect(';'); err != nil {
		return nil, fmt.Errorf("minus: %w", err)
	}
	b, err := p.compileOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, fmt.Errorf("minus: %w", err)
	}
	d, err := docspanner.Difference(a, b)
	if err != nil {
		return nil, fmt.Errorf("minus: %w", err)
	}
	return docspanner.Q(d)
}

// pattern compiles a raw spanner pattern operand into a primitive query.
func (p *parser) pattern() (*docspanner.Query, error) {
	s, err := p.compileOperand()
	if err != nil {
		return nil, err
	}
	return docspanner.Q(s)
}

// compileOperand scans a raw pattern operand — text up to the next ';' or
// ')' at parenthesis depth zero, honoring backslash escapes and character
// classes so grouping inside the pattern does not end the operand — and
// compiles it.
func (p *parser) compileOperand() (*docspanner.Spanner, error) {
	start := p.pos
	depth, inClass := 0, false
scan:
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\\' && p.pos+1 < len(p.src):
			p.pos++
		case inClass:
			if c == ']' {
				inClass = false
			}
		case c == '[':
			inClass = true
		case c == '(':
			depth++
		case c == ')':
			if depth == 0 {
				break scan
			}
			depth--
		case c == ';':
			if depth == 0 {
				break scan
			}
		}
		p.pos++
	}
	pat := strings.TrimSpace(p.src[start:p.pos])
	if pat == "" {
		return nil, fmt.Errorf("empty pattern operand at offset %d", start)
	}
	s, err := docspanner.Compile(pat, p.opts)
	if err != nil {
		return nil, fmt.Errorf("pattern %q: %w", pat, err)
	}
	return s, nil
}
