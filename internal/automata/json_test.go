package automata

import (
	"encoding/json"
	"math/rand"
	"testing"

	"docspanner/internal/spans"
)

func TestJSONRoundTrip(t *testing.T) {
	n := exampleSpanner()
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back NFA
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !Equivalent(Determinize(n), Determinize(&back)) {
		t.Error("round trip changed the spanner")
	}
	if !back.Vars.Equal(n.Vars) {
		t.Errorf("Vars = %v", back.Vars)
	}
}

func TestJSONRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		n := randomSpanner(rng, []spans.Var{"x", "y"})
		data, err := json.Marshal(n)
		if err != nil {
			t.Fatal(err)
		}
		var back NFA
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !Equivalent(Determinize(n), Determinize(&back)) {
			t.Fatalf("trial %d: round trip changed the spanner", trial)
		}
	}
}

func TestJSONRoundTripRefs(t *testing.T) {
	vars := spans.NewVarSet("x")
	n := NewNFA(vars)
	s1 := n.AddState()
	s2 := n.AddState()
	s3 := n.AddState()
	n.AddMarker(n.Start, Marker{Var: "x"}, s1)
	n.AddLetter(s1, 'a', s1)
	n.AddMarker(s1, Marker{Var: "x", Close: true}, s2)
	n.AddRef(s2, "x", s3)
	n.SetFinal(s3)
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back NFA
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.HasRefs() {
		t.Error("refs lost in round trip")
	}
}

func TestJSONDeterministicOutput(t *testing.T) {
	n := exampleSpanner()
	d1, _ := json.Marshal(n)
	d2, _ := json.Marshal(n)
	if string(d1) != string(d2) {
		t.Error("serialization not deterministic")
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"version":2,"states":1,"start":0}`,                                    // bad version
		`{"version":1,"states":0,"start":0}`,                                    // no states
		`{"version":1,"states":2,"start":5}`,                                    // bad start
		`{"version":1,"states":2,"start":0,"final":[7]}`,                        // bad final
		`{"version":1,"states":2,"start":0,"eps":[[0,9]]}`,                      // bad edge
		`{"version":1,"states":2,"start":0,"letters":[{"f":0,"b":"ab","t":1}]}`, // multibyte letter
		`{"version":1,"states":2,"start":0,"markers":[{"f":0,"v":"x","t":1}]}`,  // undeclared var
		`{"version":1,"states":2,"start":0,"refs":[{"f":0,"v":"x","t":1}]}`,     // undeclared ref var
		`not json`,
	}
	for _, c := range cases {
		var back NFA
		if err := json.Unmarshal([]byte(c), &back); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
}
