package automata

import (
	"math/rand"
	"testing"
)

func naiveTranspose(m *BoolMatrix) *BoolMatrix {
	out := NewBoolMatrix(m.N)
	for p := 0; p < m.N; p++ {
		for q := 0; q < m.N; q++ {
			if m.Get(p, q) {
				out.Set(q, p)
			}
		}
	}
	return out
}

// The blocked kernels must be bit-identical to the naive reference at
// every word-boundary width, regardless of the dispatch cutovers.
func TestBlockedKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128, 200, 257} {
		for _, density := range []float64{0.02, 0.2, 0.7} {
			a := randomMatrix(n, rng, density)
			b := randomMatrix(n, rng, density)
			wantMul := naiveMul(a, b)
			if !NewBoolMatrix(n).mulFourRussians(a, b).Equal(wantMul) {
				t.Errorf("mulFourRussians mismatch at n=%d density=%v", n, density)
			}
			if !NewBoolMatrix(n).mulSparse(a, b).Equal(wantMul) {
				t.Errorf("mulSparse mismatch at n=%d density=%v", n, density)
			}
			wantT := naiveTranspose(b)
			if !NewBoolMatrix(n).transposeBlocked(b).Equal(wantT) {
				t.Errorf("transposeBlocked mismatch at n=%d density=%v", n, density)
			}
			if !NewBoolMatrix(n).transposeScalar(b).Equal(wantT) {
				t.Errorf("transposeScalar mismatch at n=%d density=%v", n, density)
			}
			if !NewBoolMatrix(n).mulTransposedScalar(a, wantT).Equal(wantMul) {
				t.Errorf("mulTransposedScalar mismatch at n=%d density=%v", n, density)
			}
			// Public dispatchers agree with the reference no matter which
			// kernel the size/density heuristics pick.
			if !NewBoolMatrix(n).MulInto(a, b).Equal(wantMul) {
				t.Errorf("MulInto mismatch at n=%d density=%v", n, density)
			}
			if !NewBoolMatrix(n).MulTransposedInto(a, wantT).Equal(wantMul) {
				t.Errorf("MulTransposedInto mismatch at n=%d density=%v", n, density)
			}
			if !NewBoolMatrix(n).TransposeInto(b).Equal(wantT) {
				t.Errorf("TransposeInto mismatch at n=%d density=%v", n, density)
			}
		}
	}
}

func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var tile, orig [64]uint64
	for i := range tile {
		tile[i] = rng.Uint64()
		orig[i] = tile[i]
	}
	transpose64(&tile)
	for p := 0; p < 64; p++ {
		for q := 0; q < 64; q++ {
			got := tile[p]>>uint(q)&1 != 0
			want := orig[q]>>uint(p)&1 != 0
			if got != want {
				t.Fatalf("transpose64: bit (%d,%d) wrong", p, q)
			}
		}
	}
	transpose64(&tile)
	if tile != orig {
		t.Fatal("transpose64 is not an involution")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: aliasing did not panic", name)
		}
	}()
	f()
}

func TestIntoKernelsPanicOnAliasing(t *testing.T) {
	for _, n := range []int{1, 65} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := randomMatrix(n, rng, 0.3)
		b := randomMatrix(n, rng, 0.3)
		mustPanic(t, "MulInto(out=a)", func() { a.MulInto(a, b) })
		mustPanic(t, "MulInto(out=b)", func() { b.MulInto(a, b) })
		mustPanic(t, "MulTransposedInto(out=a)", func() { a.MulTransposedInto(a, b) })
		mustPanic(t, "MulTransposedInto(out=bt)", func() { b.MulTransposedInto(a, b) })
		mustPanic(t, "TransposeInto(out=m)", func() { a.TransposeInto(a) })
		v := make([]uint64, a.Words())
		mustPanic(t, "ApplyLeftInto(dst=v)", func() { a.ApplyLeftInto(v, v) })
		mustPanic(t, "ApplyRightInto(dst=v)", func() { a.ApplyRightInto(v, v) })
		// A shared backing array counts as aliasing even across distinct
		// headers.
		shared := &BoolMatrix{N: a.N, w: a.w, rows: a.rows[:len(a.rows):len(a.rows)]}
		mustPanic(t, "MulInto(shared rows)", func() { shared.MulInto(a, b) })
	}
	// N=0 matrices share no storage; the kernels must accept them.
	z := NewBoolMatrix(0)
	z.MulInto(NewBoolMatrix(0), NewBoolMatrix(0))
	z.TransposeInto(NewBoolMatrix(0))
}

func benchPair(n int, density float64) (a, b *BoolMatrix) {
	rng := rand.New(rand.NewSource(1))
	return randomMatrix(n, rng, density), randomMatrix(n, rng, density)
}

func BenchmarkMulInto(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		for _, density := range []float64{0.05, 0.5} {
			x, y := benchPair(n, density)
			out := NewBoolMatrix(n)
			name := benchName(n, density)
			b.Run("dispatch/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out.MulInto(x, y)
				}
			})
			b.Run("sparse/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out.mulSparse(x, y)
				}
			})
			b.Run("fourrussians/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out.mulFourRussians(x, y)
				}
			})
		}
	}
}

func BenchmarkTransposeInto(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		x, _ := benchPair(n, 0.3)
		out := NewBoolMatrix(n)
		name := benchName(n, 0.3)
		b.Run("blocked/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out.transposeBlocked(x)
			}
		})
		b.Run("scalar/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out.transposeScalar(x)
			}
		})
	}
}

func BenchmarkMulTransposedInto(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, density := range []float64{0.05, 0.5} {
			x, y := benchPair(n, density)
			yt := y.Transpose()
			out := NewBoolMatrix(n)
			b.Run(benchName(n, density), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out.MulTransposedInto(x, yt)
				}
			})
		}
	}
}

func BenchmarkApplyLeftInto(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		x, _ := benchPair(n, 0.3)
		v := NewBitVec(n)
		for q := 0; q < n; q += 3 {
			BitSet(v, q)
		}
		dst := make([]uint64, x.Words())
		b.Run(benchName(n, 0.3), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.ApplyLeftInto(dst, v)
			}
		})
	}
}

func benchName(n int, density float64) string {
	d := "sparse"
	if density >= 0.5 {
		d = "dense"
	}
	return "N=" + itoa(n) + "/" + d
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
