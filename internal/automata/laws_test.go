package automata

import (
	"fmt"
	"math/rand"
	"testing"

	"docspanner/internal/spans"
)

// randomSpanner builds a small random vset-automaton over {a,b} binding
// the given variables exactly once on every accepting path (a random
// linear chain with optional loops — always valid and functional).
func randomSpanner(rng *rand.Rand, vars []spans.Var) *NFA {
	n := NewNFA(spans.NewVarSet(vars...))
	cur := n.Start
	emit := func() {
		// Random letter block: loop or step.
		switch rng.Intn(3) {
		case 0:
			n.AddLetter(cur, "ab"[rng.Intn(2)], cur) // self loop
		case 1:
			next := n.AddState()
			n.AddLetter(cur, "ab"[rng.Intn(2)], next)
			cur = next
		default:
			next := n.AddState()
			n.AddLetter(cur, 'a', next)
			n.AddLetter(cur, 'b', next)
			cur = next
		}
	}
	for _, v := range vars {
		for i := rng.Intn(3); i > 0; i-- {
			emit()
		}
		s1 := n.AddState()
		n.AddMarker(cur, Marker{Var: v}, s1)
		cur = s1
		for i := rng.Intn(3); i > 0; i-- {
			emit()
		}
		s2 := n.AddState()
		n.AddMarker(cur, Marker{Var: v, Close: true}, s2)
		cur = s2
	}
	for i := rng.Intn(3); i > 0; i-- {
		emit()
	}
	n.SetFinal(cur)
	return n
}

func TestUnionCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		a := randomSpanner(rng, []spans.Var{"x"})
		b := randomSpanner(rng, []spans.Var{"x"})
		c := randomSpanner(rng, []spans.Var{"x"})
		if !Equivalent(Determinize(Union(a, b)), Determinize(Union(b, a))) {
			t.Fatalf("trial %d: union not commutative", trial)
		}
		l := Union(Union(a, b), c)
		r := Union(a, Union(b, c))
		if !Equivalent(Determinize(l), Determinize(r)) {
			t.Fatalf("trial %d: union not associative", trial)
		}
		// Idempotence: a ∪ a ≡ a.
		if !Equivalent(Determinize(Union(a, a)), Determinize(a)) {
			t.Fatalf("trial %d: union not idempotent", trial)
		}
	}
}

func TestJoinLawsOnDisjointVars(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 10; trial++ {
		a := randomSpanner(rng, []spans.Var{"x"})
		b := randomSpanner(rng, []spans.Var{"y"})
		// Commutativity of ⋈ (disjoint variables: cross product on the
		// same document).
		ab := Determinize(Join(a, b))
		ba := Determinize(Join(b, a))
		if !Equivalent(ab, ba) {
			t.Fatalf("trial %d: join not commutative", trial)
		}
	}
}

func TestJoinSharedVarIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 10; trial++ {
		a := Normalize(randomSpanner(rng, []spans.Var{"x"}))
		if !Equivalent(Determinize(Join(a, a)), Determinize(a)) {
			t.Fatalf("trial %d: a ⋈ a ≢ a", trial)
		}
	}
}

func TestProjectComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 10; trial++ {
		a := randomSpanner(rng, []spans.Var{"x", "y", "z"})
		// π_x(π_{x,y}(a)) ≡ π_x(a)
		l := Project(Project(a, spans.NewVarSet("x", "y")), spans.NewVarSet("x"))
		r := Project(a, spans.NewVarSet("x"))
		if !Equivalent(Determinize(l), Determinize(r)) {
			t.Fatalf("trial %d: projection composition fails", trial)
		}
	}
}

func TestUnionDistributesOverJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 8; trial++ {
		a := randomSpanner(rng, []spans.Var{"x"})
		b := randomSpanner(rng, []spans.Var{"y"})
		c := randomSpanner(rng, []spans.Var{"y"})
		// a ⋈ (b ∪ c) ≡ (a ⋈ b) ∪ (a ⋈ c)
		l := Determinize(Join(a, Union(b, c)))
		r := Determinize(Union(Join(a, b), Join(a, c)))
		if !Equivalent(l, r) {
			t.Fatalf("trial %d: join does not distribute over union", trial)
		}
	}
}

func TestTrimPreservesSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 10; trial++ {
		a := randomSpanner(rng, []spans.Var{"x", "y"})
		// Add junk states.
		junk := a.AddState()
		a.AddLetter(junk, 'a', junk)
		j2 := a.AddState()
		a.AddEps(a.Start, j2) // reachable but dead
		if !Equivalent(Determinize(a), Determinize(a.Trim())) {
			t.Fatalf("trial %d: Trim changed the spanner", trial)
		}
	}
}

func TestDeterminizeIdempotentOnLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 10; trial++ {
		a := randomSpanner(rng, []spans.Var{"x"})
		d1 := Determinize(a)
		d2 := Determinize(DEVAToNFA(d1))
		if !Equivalent(d1, d2) {
			t.Fatalf("trial %d: determinize ∘ toNFA changed the language", trial)
		}
	}
}

func TestRandomSpannersAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	for trial := 0; trial < 20; trial++ {
		a := randomSpanner(rng, []spans.Var{"x", "y"})
		if err := a.Validate(true); err != nil {
			t.Fatalf("trial %d: generator produced invalid automaton: %v", trial, err)
		}
		if !Equivalent(Determinize(a), Determinize(a.Clone())) {
			t.Fatalf("trial %d: Clone not equivalent", trial)
		}
	}
}

func TestShortestWitnessIsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	for trial := 0; trial < 10; trial++ {
		a := randomSpanner(rng, []spans.Var{"x"})
		w := a.ShortestWitness()
		if w == nil {
			t.Fatal("random spanner should be satisfiable")
		}
		doc := w.Erase()
		// No accepted word strictly shorter: check documents of smaller
		// length via the marker-free projection.
		d := Determinize(Project(a, nil))
		for l := 0; l < len(doc); l++ {
			if acceptsAnyDocOfLength(d, l) {
				t.Fatalf("trial %d: witness %q not shortest (doc of length %d accepted)", trial, doc, l)
			}
		}
	}
}

func acceptsAnyDocOfLength(d *DEVA, l int) bool {
	var rec func(q, remaining int) bool
	rec = func(q, remaining int) bool {
		if remaining == 0 {
			return d.Final[q]
		}
		for _, b := range []byte("ab") {
			if s := d.Step(q, b); s >= 0 && rec(s, remaining-1) {
				return true
			}
		}
		return false
	}
	return rec(d.Start, l)
}

func TestEquivalentDifferentStructures(t *testing.T) {
	// Structural variety producing the same spanner: marker around a|b vs
	// union of two marked branches.
	vars := spans.NewVarSet("x")
	mk := func(b byte) *NFA {
		n := NewNFA(vars)
		s1 := n.AddState()
		s2 := n.AddState()
		s3 := n.AddState()
		n.AddMarker(n.Start, Marker{Var: "x"}, s1)
		n.AddLetter(s1, b, s2)
		n.AddMarker(s2, Marker{Var: "x", Close: true}, s3)
		n.SetFinal(s3)
		return n
	}
	either := NewNFA(vars)
	s1 := either.AddState()
	s2 := either.AddState()
	s3 := either.AddState()
	either.AddMarker(either.Start, Marker{Var: "x"}, s1)
	either.AddLetter(s1, 'a', s2)
	either.AddLetter(s1, 'b', s2)
	either.AddMarker(s2, Marker{Var: "x", Close: true}, s3)
	either.SetFinal(s3)

	u := Union(mk('a'), mk('b'))
	if !Equivalent(Determinize(u), Determinize(either)) {
		t.Error("union of branches ≢ merged branch")
	}
}

func ExampleNFA_Dot() {
	n := NewNFA(spans.NewVarSet("x"))
	s1 := n.AddState()
	s2 := n.AddState()
	s3 := n.AddState()
	n.AddMarker(n.Start, Marker{Var: "x"}, s1)
	n.AddLetter(s1, 'a', s2)
	n.AddMarker(s2, Marker{Var: "x", Close: true}, s3)
	n.SetFinal(s3)
	fmt.Println(len(n.Dot("tiny")) > 0)
	// Output: true
}
