// Package automata provides the automata-theoretic machinery underlying
// regular document spanners: nondeterministic finite automata over the
// extended alphabet Σ ∪ {x▷, ◁x : x ∈ X} (the representation of
// subword-marked languages, Section 2.1 of Schmid and Schweikardt's
// PODS 2022 survey), their determinization into extended deterministic
// vset-automata reading marker *sets* (Section 2.2, Option 2), products for
// the spanner algebra, language-level decision procedures, and the Boolean
// state-transition matrices used for evaluation over SLP-compressed
// documents (Section 4.2).
package automata

import (
	"fmt"
	"sort"

	"docspanner/internal/refwords"
	"docspanner/internal/spans"
)

// Marker aliases the marker symbol type of package refwords.
type Marker = refwords.Marker

// NFA is a nondeterministic finite automaton over the extended alphabet:
// its transitions read alphabet letters, single marker symbols, or ε.
// An NFA whose accepted words are valid subword-marked words represents a
// regular document spanner (a vset-automaton in the survey's terminology);
// an NFA without marker transitions is a plain automaton over Σ.
type NFA struct {
	Vars    spans.VarSet
	Start   int
	Final   []bool
	Eps     [][]int
	Letters []map[byte][]int
	Markers []map[Marker][]int
	// Refs are reference transitions reading the symbol x of a ref-word
	// (Section 3.1): a refl-spanner automaton is an NFA with Refs. All
	// regular-spanner algorithms require Refs to be empty; HasRefs tells
	// them apart.
	Refs []map[spans.Var][]int
}

// NewNFA returns an empty automaton over the given variables with a single
// (non-final) start state 0.
func NewNFA(vars spans.VarSet) *NFA {
	n := &NFA{Vars: vars}
	n.AddState()
	return n
}

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return len(n.Final) }

// AddState adds a fresh non-final state and returns its index.
func (n *NFA) AddState() int {
	id := len(n.Final)
	n.Final = append(n.Final, false)
	n.Eps = append(n.Eps, nil)
	n.Letters = append(n.Letters, nil)
	n.Markers = append(n.Markers, nil)
	n.Refs = append(n.Refs, nil)
	return id
}

// SetFinal marks state q as accepting.
func (n *NFA) SetFinal(q int) { n.Final[q] = true }

// AddEps adds an ε-transition p → q.
func (n *NFA) AddEps(p, q int) { n.Eps[p] = append(n.Eps[p], q) }

// AddLetter adds a transition p → q reading letter b.
func (n *NFA) AddLetter(p int, b byte, q int) {
	if n.Letters[p] == nil {
		n.Letters[p] = make(map[byte][]int)
	}
	n.Letters[p][b] = append(n.Letters[p][b], q)
}

// AddMarker adds a transition p → q reading marker m.
func (n *NFA) AddMarker(p int, m Marker, q int) {
	if n.Markers[p] == nil {
		n.Markers[p] = make(map[Marker][]int)
	}
	n.Markers[p][m] = append(n.Markers[p][m], q)
}

// AddRef adds a transition p → q reading the reference symbol of v.
func (n *NFA) AddRef(p int, v spans.Var, q int) {
	if n.Refs[p] == nil {
		n.Refs[p] = make(map[spans.Var][]int)
	}
	n.Refs[p][v] = append(n.Refs[p][v], q)
}

// HasRefs reports whether any reference transition exists, i.e. whether
// the automaton represents a refl-spanner rather than a regular spanner.
func (n *NFA) HasRefs() bool {
	for _, tr := range n.Refs {
		if len(tr) > 0 {
			return true
		}
	}
	return false
}

// EpsClosure expands the state set to its ε-closure. The input slice is
// treated as a set; the result is sorted and duplicate-free.
func (n *NFA) EpsClosure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for _, q := range states {
		seen[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range n.Eps[q] {
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
	}
	return sortedKeys(seen)
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for q := range m {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// Alphabet returns the set of letters that occur on transitions.
func (n *NFA) Alphabet() []byte {
	var seen [256]bool
	cnt := 0
	for _, tr := range n.Letters {
		for b := range tr {
			if !seen[b] {
				seen[b] = true
				cnt++
			}
		}
	}
	out := make([]byte, 0, cnt)
	for b := 0; b < 256; b++ {
		if seen[b] {
			out = append(out, byte(b))
		}
	}
	return out
}

// reachable returns the states reachable from start via any transition.
func (n *NFA) reachable() []bool {
	seen := make([]bool, n.NumStates())
	stack := []int{n.Start}
	seen[n.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push := func(r int) {
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
		for _, r := range n.Eps[q] {
			push(r)
		}
		for _, rs := range n.Letters[q] {
			for _, r := range rs {
				push(r)
			}
		}
		for _, rs := range n.Markers[q] {
			for _, r := range rs {
				push(r)
			}
		}
		for _, rs := range n.Refs[q] {
			for _, r := range rs {
				push(r)
			}
		}
	}
	return seen
}

// coReachable returns the states from which a final state is reachable.
func (n *NFA) coReachable() []bool {
	// Build reverse adjacency.
	rev := make([][]int, n.NumStates())
	addRev := func(p, q int) { rev[q] = append(rev[q], p) }
	for p := range n.Final {
		for _, q := range n.Eps[p] {
			addRev(p, q)
		}
		for _, qs := range n.Letters[p] {
			for _, q := range qs {
				addRev(p, q)
			}
		}
		for _, qs := range n.Markers[p] {
			for _, q := range qs {
				addRev(p, q)
			}
		}
		for _, qs := range n.Refs[p] {
			for _, q := range qs {
				addRev(p, q)
			}
		}
	}
	seen := make([]bool, n.NumStates())
	var stack []int
	for q, f := range n.Final {
		if f {
			seen[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// Trim returns an equivalent automaton containing only useful states
// (reachable and co-reachable). If the language is empty, the result is a
// single-state automaton with no transitions.
func (n *NFA) Trim() *NFA {
	reach, co := n.reachable(), n.coReachable()
	remap := make([]int, n.NumStates())
	out := NewNFA(n.Vars)
	// State 0 of out corresponds to n.Start.
	useful := func(q int) bool { return reach[q] && co[q] }
	if !useful(n.Start) {
		return out // empty language
	}
	remap[n.Start] = 0
	for q := range n.Final {
		if q != n.Start && useful(q) {
			remap[q] = out.AddState()
		}
	}
	for q := range n.Final {
		if !useful(q) {
			continue
		}
		if n.Final[q] {
			out.SetFinal(remap[q])
		}
		for _, r := range n.Eps[q] {
			if useful(r) {
				out.AddEps(remap[q], remap[r])
			}
		}
		for b, rs := range n.Letters[q] {
			for _, r := range rs {
				if useful(r) {
					out.AddLetter(remap[q], b, remap[r])
				}
			}
		}
		for m, rs := range n.Markers[q] {
			for _, r := range rs {
				if useful(r) {
					out.AddMarker(remap[q], m, remap[r])
				}
			}
		}
		for v, rs := range n.Refs[q] {
			for _, r := range rs {
				if useful(r) {
					out.AddRef(remap[q], v, remap[r])
				}
			}
		}
	}
	return out
}

// DeadStates reports the automaton's useless states: unreachable lists the
// states not reachable from the start state, nonCoaccessible the reachable
// states from which no final state can be reached. The two lists are
// disjoint (a state unreachable AND non-coaccessible is reported only as
// unreachable), sorted, and together are exactly the states Trim removes.
func (n *NFA) DeadStates() (unreachable, nonCoaccessible []int) {
	reach, co := n.reachable(), n.coReachable()
	for q := range n.Final {
		switch {
		case !reach[q]:
			unreachable = append(unreachable, q)
		case !co[q]:
			nonCoaccessible = append(nonCoaccessible, q)
		}
	}
	return unreachable, nonCoaccessible
}

// Empty reports whether the automaton accepts no word at all.
func (n *NFA) Empty() bool {
	reach := n.reachable()
	for q, f := range n.Final {
		if f && reach[q] {
			return false
		}
	}
	return true
}

// ShortestWitness returns a shortest accepted word (as a refwords.Word),
// or nil if the language is empty. Useful for Satisfiability witnesses.
func (n *NFA) ShortestWitness() refwords.Word {
	type pred struct {
		state int
		item  refwords.Item
		eps   bool
	}
	prev := make([]pred, n.NumStates())
	visited := make([]bool, n.NumStates())
	queue := []int{n.Start}
	visited[n.Start] = true
	prev[n.Start] = pred{state: -1}
	goal := -1
	for len(queue) > 0 && goal < 0 {
		q := queue[0]
		queue = queue[1:]
		if n.Final[q] {
			goal = q
			break
		}
		visit := func(r int, it refwords.Item, eps bool) {
			if !visited[r] {
				visited[r] = true
				prev[r] = pred{q, it, eps}
				queue = append(queue, r)
			}
		}
		for _, r := range n.Eps[q] {
			visit(r, refwords.Item{}, true)
		}
		for m, rs := range n.Markers[q] {
			for _, r := range rs {
				if m.Close {
					visit(r, refwords.CloseM(m.Var), false)
				} else {
					visit(r, refwords.Open(m.Var), false)
				}
			}
		}
		for b, rs := range n.Letters[q] {
			for _, r := range rs {
				visit(r, refwords.Letter(b), false)
			}
		}
		for v, rs := range n.Refs[q] {
			for _, r := range rs {
				visit(r, refwords.Ref(v), false)
			}
		}
	}
	if goal < 0 {
		return nil
	}
	var rev refwords.Word
	for q := goal; prev[q].state >= 0; q = prev[q].state {
		if !prev[q].eps {
			rev = append(rev, prev[q].item)
		}
	}
	w := make(refwords.Word, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		w = append(w, rev[i])
	}
	return w
}

// Validate checks that the automaton is a well-formed vset-automaton:
// on every path from the start to a final state, each marker occurs at
// most once, opens precede closes, and (when functional is true) every
// variable's markers occur exactly once. The check is semantic — it
// inspects reachability, not syntax — and runs in polynomial time.
func (n *NFA) Validate(functional bool) error {
	trimmed := n.Trim()
	if trimmed.Empty() {
		return nil
	}
	// For each variable, run a 3-state monitor (unseen/open/closed) in
	// product with the automaton; an error is a reachable violation.
	for _, v := range n.Vars {
		if err := trimmed.validateVar(v, functional); err != nil {
			return err
		}
	}
	return nil
}

func (n *NFA) validateVar(v spans.Var, functional bool) error {
	const (
		unseen = 0
		opened = 1
		closed = 2
	)
	type cfg struct {
		q, phase int
	}
	seen := make(map[cfg]bool)
	stack := []cfg{{n.Start, unseen}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Final[c.q] {
			if functional && c.phase != closed {
				return fmt.Errorf("automata: variable %s not assigned on some accepting path", v)
			}
			if c.phase == opened {
				return fmt.Errorf("automata: variable %s opened but never closed on some accepting path", v)
			}
		}
		push := func(q, phase int) {
			nc := cfg{q, phase}
			if !seen[nc] {
				seen[nc] = true
				stack = append(stack, nc)
			}
		}
		for _, r := range n.Eps[c.q] {
			push(r, c.phase)
		}
		for _, rs := range n.Letters[c.q] {
			for _, r := range rs {
				push(r, c.phase)
			}
		}
		for _, rs := range n.Refs[c.q] {
			for _, r := range rs {
				push(r, c.phase)
			}
		}
		for m, rs := range n.Markers[c.q] {
			next := c.phase
			if m.Var == v {
				switch {
				case !m.Close && c.phase == unseen:
					next = opened
				case m.Close && c.phase == opened:
					next = closed
				default:
					// Re-opening or closing out of order: only an error if
					// this configuration can still reach acceptance; since
					// the automaton is trimmed, every state can.
					return fmt.Errorf("automata: marker %v occurs out of order or repeatedly", m)
				}
			}
			for _, r := range rs {
				push(r, next)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the automaton.
func (n *NFA) Clone() *NFA {
	out := &NFA{
		Vars:    append(spans.VarSet(nil), n.Vars...),
		Start:   n.Start,
		Final:   append([]bool(nil), n.Final...),
		Eps:     make([][]int, n.NumStates()),
		Letters: make([]map[byte][]int, n.NumStates()),
		Markers: make([]map[Marker][]int, n.NumStates()),
		Refs:    make([]map[spans.Var][]int, n.NumStates()),
	}
	for q := range n.Final {
		out.Eps[q] = append([]int(nil), n.Eps[q]...)
		if n.Letters[q] != nil {
			out.Letters[q] = make(map[byte][]int, len(n.Letters[q]))
			for b, rs := range n.Letters[q] {
				out.Letters[q][b] = append([]int(nil), rs...)
			}
		}
		if n.Markers[q] != nil {
			out.Markers[q] = make(map[Marker][]int, len(n.Markers[q]))
			for m, rs := range n.Markers[q] {
				out.Markers[q][m] = append([]int(nil), rs...)
			}
		}
		if n.Refs[q] != nil {
			out.Refs[q] = make(map[spans.Var][]int, len(n.Refs[q]))
			for v, rs := range n.Refs[q] {
				out.Refs[q][v] = append([]int(nil), rs...)
			}
		}
	}
	return out
}

// CountStates and CountTransitions report the automaton size (|M|).
func (n *NFA) CountTransitions() int {
	total := 0
	for q := range n.Final {
		total += len(n.Eps[q])
		for _, rs := range n.Letters[q] {
			total += len(rs)
		}
		for _, rs := range n.Markers[q] {
			total += len(rs)
		}
		for _, rs := range n.Refs[q] {
			total += len(rs)
		}
	}
	return total
}
