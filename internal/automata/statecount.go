package automata

import "strings"

// DeterminizedStatesAtMost runs the subset construction of Determinize
// state-interning only — no transition tables are materialized — and
// stops as soon as more than limit subset states exist. It returns the
// number of states discovered and whether the construction completed
// within the limit: (n, true) means the full DEVA has exactly n ≤ limit
// states; (n, false) with n > limit means construction was cut off.
//
// This is the estimator behind the SP009 determinization-blowup lint:
// it answers "would Determinize blow up?" in time proportional to the
// explored prefix of the subset graph, instead of paying for (and
// caching) the full exponential construction. Like Determinize, it
// requires a reference-free automaton.
func DeterminizedStatesAtMost(n *NFA, limit int) (int, bool) {
	if n.HasRefs() {
		panic("automata: DeterminizedStatesAtMost on an automaton with reference transitions; dereference first (package refl)")
	}
	if limit < 1 {
		limit = 1
	}
	ix := NewMaskIndex(n.Vars)

	enc := func(set []int) string {
		var sb strings.Builder
		for _, q := range set {
			sb.WriteByte(byte(q))
			sb.WriteByte(byte(q >> 8))
			sb.WriteByte(byte(q >> 16))
		}
		return sb.String()
	}

	ids := make(map[string]int)
	var sets [][]int
	intern := func(set []int) {
		k := enc(set)
		if _, ok := ids[k]; ok {
			return
		}
		ids[k] = len(sets)
		sets = append(sets, set)
	}

	intern(n.EpsClosure([]int{n.Start}))

	for work := 0; work < len(sets); work++ {
		if len(sets) > limit {
			return len(sets), false
		}
		set := sets[work]

		// Letter successors.
		byLetter := make(map[byte]map[int]bool)
		for _, q := range set {
			for b, rs := range n.Letters[q] {
				tgt := byLetter[b]
				if tgt == nil {
					tgt = make(map[int]bool)
					byLetter[b] = tgt
				}
				for _, r := range rs {
					tgt[r] = true
				}
			}
		}
		for _, tgt := range byLetter {
			intern(n.EpsClosure(sortedKeys(tgt)))
		}

		// Mask successors: boundary paths over markers and ε, exactly as
		// in Determinize.
		type cfg struct {
			q    int
			mask Mask
		}
		reach := make(map[cfg]bool)
		var stack []cfg
		for _, q := range set {
			c := cfg{q, 0}
			reach[c] = true
			stack = append(stack, c)
		}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, r := range n.Eps[c.q] {
				nc := cfg{r, c.mask}
				if !reach[nc] {
					reach[nc] = true
					stack = append(stack, nc)
				}
			}
			for m, rs := range n.Markers[c.q] {
				bit := Mask(1) << ix.Bit(m)
				if c.mask&bit != 0 {
					continue
				}
				for _, r := range rs {
					nc := cfg{r, c.mask | bit}
					if !reach[nc] {
						reach[nc] = true
						stack = append(stack, nc)
					}
				}
			}
		}
		byMask := make(map[Mask]map[int]bool)
		for c := range reach {
			if c.mask == 0 {
				continue
			}
			tgt := byMask[c.mask]
			if tgt == nil {
				tgt = make(map[int]bool)
				byMask[c.mask] = tgt
			}
			tgt[c.q] = true
		}
		for _, tgt := range byMask {
			intern(sortedKeys(tgt))
		}
	}
	if len(sets) > limit {
		return len(sets), false
	}
	return len(sets), true
}
