package automata

import (
	"fmt"
	"sort"
	"sync"

	"docspanner/internal/refwords"
)

// Compiled transition kernels. The map-based transition tables of NFA and
// DEVA are the right representation while an automaton is being built and
// transformed, but they are a poor fit for the evaluation hot paths: every
// Step is a hash lookup, and the compressed-evaluation kernel (Section 4.2
// of the survey) re-derived its per-letter Boolean matrices for every new
// Matcher. CompileNFA and CompileDEVA flatten an automaton — once it is
// fully built — into dense per-letter arrays and matrices; the Compiled
// accessors hash-cons the result per automaton instance, so every
// matcher, index, and enumerator over the same automaton shares one
// compilation.
//
// A compiled automaton is immutable and safe for concurrent use. The
// source automaton must not be mutated after its first compilation.

// MaskEdge is one mask transition of a compiled DEVA, sorted by mask so
// that enumeration visits markers in a deterministic order.
type MaskEdge struct {
	Mask Mask
	To   int32
}

// CompiledDEVA is a DEVA with transitions flattened into dense arrays:
// letter steps become a single int32 slice indexed [letter-index·NQ + q],
// and each state's mask transitions become a sorted edge list.
type CompiledDEVA struct {
	DEVA    *DEVA
	NQ      int
	Start   int
	Final   []bool
	Letters []byte // sorted distinct letters on transitions

	letterIndex [256]int16 // byte → index into Letters, -1 if absent
	step        []int32    // [li*NQ+q] → successor state, -1 if none
	MaskEdges   [][]MaskEdge

	// markers caches the expanded, sorted marker set of every mask that
	// occurs on a transition, so the per-tuple reconstruction in the
	// enumerators stops allocating and re-sorting per event.
	markers map[Mask]refwords.MarkerSet
}

// CompileDEVA flattens d into dense transition arrays. The automaton
// must be fully built; it is not retained for mutation.
func CompileDEVA(d *DEVA) *CompiledDEVA {
	nq := d.NumStates()
	letters, _ := d.AlphabetAndMasks()
	c := &CompiledDEVA{
		DEVA:    d,
		NQ:      nq,
		Start:   d.Start,
		Final:   d.Final,
		Letters: letters,
		step:    make([]int32, len(letters)*nq),
	}
	for b := range c.letterIndex {
		c.letterIndex[b] = -1
	}
	for li, b := range letters {
		c.letterIndex[b] = int16(li)
		row := c.step[li*nq : (li+1)*nq]
		for q := 0; q < nq; q++ {
			row[q] = int32(d.Step(q, b))
		}
	}
	c.MaskEdges = make([][]MaskEdge, nq)
	c.markers = make(map[Mask]refwords.MarkerSet)
	for q := 0; q < nq; q++ {
		for m, t := range d.Masks[q] {
			c.MaskEdges[q] = append(c.MaskEdges[q], MaskEdge{m, int32(t)})
			if _, ok := c.markers[m]; !ok {
				c.markers[m] = d.Index.Markers(m)
			}
		}
		sort.Slice(c.MaskEdges[q], func(i, j int) bool {
			return c.MaskEdges[q][i].Mask < c.MaskEdges[q][j].Mask
		})
	}
	return c
}

// Markers returns the expanded, sorted marker set of m, cached at
// compilation time for every mask on a transition. The returned slice is
// shared: callers must not mutate it. Masks that never occur on a
// transition fall back to the allocating expansion.
func (c *CompiledDEVA) Markers(m Mask) refwords.MarkerSet {
	if ms, ok := c.markers[m]; ok {
		return ms
	}
	return c.DEVA.Index.Markers(m)
}

// Step returns the letter successor of q on b, or -1 — the dense
// equivalent of DEVA.Step.
func (c *CompiledDEVA) Step(q int, b byte) int32 {
	li := c.letterIndex[b]
	if li < 0 {
		return -1
	}
	return c.step[int(li)*c.NQ+q]
}

// StepsFor returns the dense successor row for letter b (indexed by
// state, -1 entries for missing transitions), or nil when no transition
// reads b anywhere. Hot loops index the row directly instead of calling
// Step per state.
func (c *CompiledDEVA) StepsFor(b byte) []int32 {
	li := c.letterIndex[b]
	if li < 0 {
		return nil
	}
	return c.step[int(li)*c.NQ : (int(li)+1)*c.NQ]
}

var compiledDEVAs sync.Map // *DEVA → *CompiledDEVA

// Compiled returns the hash-consed dense compilation of d, building it
// on first use. All callers over one DEVA share the same compilation;
// d must not be mutated after the first call.
func (d *DEVA) Compiled() *CompiledDEVA {
	if v, ok := compiledDEVAs.Load(d); ok {
		return v.(*CompiledDEVA)
	}
	v, _ := compiledDEVAs.LoadOrStore(d, CompileDEVA(d))
	return v.(*CompiledDEVA)
}

// CompiledNFA holds the per-letter reachability matrices of a plain NFA
// (no markers, no references): Closure is the reflexive-transitive
// ε-closure matrix C, and each letter b gets L_b = C·S_b·C, so products
// of the L_b compose correctly because C is idempotent. This is the
// Boolean-matrix kernel of compressed membership (Section 4.2).
type CompiledNFA struct {
	NFA     *NFA
	NQ      int
	Closure *BoolMatrix
	Letters []byte

	mats [256]*BoolMatrix // per byte; unknown letters share the zero matrix
	zero *BoolMatrix

	// EmptyAccept reports whether the empty document is accepted.
	EmptyAccept bool
}

// CompileNFA builds the matrix compilation of a plain NFA. It errors on
// automata with marker or reference transitions (those represent
// spanners, not languages, and take the DEVA route).
func CompileNFA(n *NFA) (*CompiledNFA, error) {
	if n.HasRefs() {
		return nil, fmt.Errorf("automata: CompileNFA on an automaton with reference transitions")
	}
	for _, tr := range n.Markers {
		if len(tr) > 0 {
			return nil, fmt.Errorf("automata: CompileNFA on an automaton with marker transitions")
		}
	}
	nq := n.NumStates()
	c := &CompiledNFA{NFA: n, NQ: nq, Letters: n.Alphabet(), zero: NewBoolMatrix(nq)}
	// Reflexive-transitive ε-closure matrix C.
	cl := IdentityMatrix(nq)
	for q := 0; q < nq; q++ {
		for _, r := range n.EpsClosure([]int{q}) {
			cl.Set(q, r)
		}
	}
	c.Closure = cl
	for _, q := range n.EpsClosure([]int{n.Start}) {
		if n.Final[q] {
			c.EmptyAccept = true
			break
		}
	}
	for b := range c.mats {
		c.mats[b] = c.zero
	}
	// One scratch pair shared across all letters, and one arena for the
	// retained per-letter results: compilation allocates O(1) times for
	// the whole alphabet, not twice per letter (the regression gate is
	// TestCompileNFAAllocsPerLetter).
	s := NewBoolMatrix(nq)
	tmp := NewBoolMatrix(nq)
	w := s.w
	arena := make([]uint64, len(c.Letters)*nq*w)
	mats := make([]BoolMatrix, len(c.Letters))
	for li, b := range c.Letters {
		clear(s.rows)
		for p := 0; p < nq; p++ {
			for _, r := range n.Letters[p][b] {
				s.Set(p, r)
			}
		}
		// L_b = C·S_b·C, built with the in-place kernels.
		tmp.MulInto(cl, s)
		m := &mats[li]
		*m = BoolMatrix{N: nq, w: w, rows: arena[li*nq*w : (li+1)*nq*w : (li+1)*nq*w]}
		m.MulInto(tmp, cl)
		c.mats[b] = m
	}
	return c, nil
}

// LetterMatrix returns L_b (the zero matrix for letters unknown to the
// automaton — no transition reads them, so nothing is reachable).
func (c *CompiledNFA) LetterMatrix(b byte) *BoolMatrix { return c.mats[b] }

var compiledNFAs sync.Map // *NFA → *CompiledNFA

// CompiledMatrices returns the hash-consed matrix compilation of n,
// building it on first use; n must not be mutated after the first call.
func (n *NFA) CompiledMatrices() (*CompiledNFA, error) {
	if v, ok := compiledNFAs.Load(n); ok {
		return v.(*CompiledNFA), nil
	}
	c, err := CompileNFA(n)
	if err != nil {
		return nil, err
	}
	v, _ := compiledNFAs.LoadOrStore(n, c)
	return v.(*CompiledNFA), nil
}

// ResetCompiledCaches drops every hash-consed compilation (tests and
// long-lived processes that discard automata).
func ResetCompiledCaches() {
	compiledDEVAs.Range(func(k, _ any) bool { compiledDEVAs.Delete(k); return true })
	compiledNFAs.Range(func(k, _ any) bool { compiledNFAs.Delete(k); return true })
}
