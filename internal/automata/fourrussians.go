package automata

import (
	"math/bits"
	"sync"
)

// Blocked Boolean matrix kernels. The scalar kernels in matrix.go scan
// set bits one at a time; these kernels trade a per-block table build for
// word-parallel row combination (the "Four Russians" method) and a
// tile-wise transpose, which is what makes the matrix products behind
// compressed evaluation (Section 4.2 of the survey) run at memory speed
// once the automata get large or dense. The complexity analysis follows
// Arlazarov–Dinic–Kronrod–Faradžev: with 8-row blocks the product costs
// O(N²·w/8) word operations plus O(32·N·w) for the tables, against
// O(pop(a)·w) for the sparse scan — so the dispatchers in matrix.go
// switch kernels on size and population count.

const (
	// frMinN is the smallest matrix order at which the Four-Russians
	// product can beat the sparse scan: below it, building 256-entry
	// tables per 8-row block costs more than the whole scalar product.
	frMinN = 128
	// frDensityDen is the density denominator of the product dispatch:
	// the blocked product takes over when more than 1/frDensityDen of
	// all N² entries are set. The sparse scan pays one row-OR per set
	// bit while the blocked product pays one per nonzero 8-bit chunk
	// (at most N²/8 of them), so the measured crossover sits near
	// one-quarter density (BenchmarkMulInto).
	frDensityDen = 4
	// transposeBlockN is the order at which the tile-wise transpose
	// takes over from the bit-at-a-time scan.
	transposeBlockN = 64
)

// wordPool recycles the per-call scratch of the blocked kernels (the
// 256-entry combination tables and transposed operands), keeping the hot
// evaluation loops allocation-free. Buffers are handed back unzeroed;
// every consumer fully overwrites what it reads.
var wordPool sync.Pool // *[]uint64

func getWords(n int) []uint64 {
	if v := wordPool.Get(); v != nil {
		if s := *(v.(*[]uint64)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]uint64, n)
}

func putWords(s []uint64) {
	wordPool.Put(&s)
}

// popCount returns the number of set bits of the whole matrix — the
// density input of the kernel dispatch. O(N·w/…) word popcounts; noise
// next to any product.
func (m *BoolMatrix) popCount() int {
	n := 0
	for _, word := range m.rows {
		n += bits.OnesCount64(word)
	}
	return n
}

// mulFourRussians computes a·b into out with the Four-Russians blocked
// product: for each 8-row block of b it builds the 256 possible OR
// combinations of those rows in one doubling pass, then folds each row of
// a block by block, indexing the table with the row's 8-bit chunk. Rows
// of the product are only touched for nonzero chunks, so the kernel
// degrades gracefully on sparse inputs too. out must not alias a or b
// (enforced by the MulInto dispatcher).
func (out *BoolMatrix) mulFourRussians(a, b *BoolMatrix) *BoolMatrix {
	w := out.w
	n := a.N
	clear(out.rows)
	if n == 0 || w == 0 {
		return out
	}
	nblk := (n + 7) / 8
	tbl := getWords(256 * w)
	for blk := 0; blk < nblk; blk++ {
		r0 := blk * 8
		nr := 8
		if n-r0 < nr {
			nr = n - r0
		}
		// tbl[m] = OR of b's rows r0+i over the set bits i of m, built
		// incrementally: each entry extends the entry without its lowest
		// bit by one row OR. Bits ≥ nr (last block only) never occur in a
		// chunk because a's padding bits are zero; their entries just
		// copy the lower entry so the table stays well defined.
		clear(tbl[:w])
		for m := 1; m < 256; m++ {
			dst := tbl[m*w : m*w+w : m*w+w]
			src := tbl[(m&(m-1))*w : (m&(m-1))*w+w : (m&(m-1))*w+w]
			i := bits.TrailingZeros32(uint32(m))
			if i >= nr {
				copy(dst, src)
				continue
			}
			row := b.rows[(r0+i)*w : (r0+i+1)*w : (r0+i+1)*w]
			for k := range dst {
				dst[k] = src[k] | row[k]
			}
		}
		// Fold the block's chunk of every row of a. r0 is a multiple of
		// 8, so the chunk never straddles a word boundary.
		wi := r0 >> 6
		shift := uint(r0 & 63)
		for p := 0; p < n; p++ {
			ch := (a.rows[p*w+wi] >> shift) & 0xff
			if ch == 0 {
				continue
			}
			src := tbl[int(ch)*w : int(ch)*w+w : int(ch)*w+w]
			dst := out.rows[p*w : p*w+w : p*w+w]
			for k := range dst {
				dst[k] |= src[k]
			}
		}
	}
	putWords(tbl)
	return out
}

// transpose64 transposes a 64×64 bit tile in place (bit q of word p ↔
// bit p of word q), by recursive block swapping in log₂64 = 6 passes —
// Hacker's Delight 7-3 with LSB-first column numbering.
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := ((a[k] >> uint(j)) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
		j >>= 1
		m ^= m << uint(j)
	}
}

// transposeBlocked computes mᵀ into out tile by tile: gather a 64×64 bit
// tile (64 row words of one column-word), transpose it in registers, and
// scatter it as 64 column words of one row-word. Both the gather and the
// scatter touch whole cache lines, unlike the bit-at-a-time scan. Every
// word of out is written exactly once, so no clear pass is needed; tile
// rows past N are zeroed so the padding-bits-are-zero invariant holds.
func (out *BoolMatrix) transposeBlocked(m *BoolMatrix) *BoolMatrix {
	n := m.N
	w := m.w
	var tile [64]uint64
	for bi := 0; bi < n; bi += 64 {
		nr := n - bi
		if nr > 64 {
			nr = 64
		}
		wi := bi >> 6
		for wj := 0; wj < w; wj++ {
			for r := 0; r < nr; r++ {
				tile[r] = m.rows[(bi+r)*w+wj]
			}
			for r := nr; r < 64; r++ {
				tile[r] = 0
			}
			transpose64(&tile)
			nc := n - wj*64
			if nc > 64 {
				nc = 64
			}
			for c := 0; c < nc; c++ {
				out.rows[(wj*64+c)*w+wi] = tile[c]
			}
		}
	}
	return out
}
