package automata

import (
	"testing"

	"docspanner/internal/refwords"
	"docspanner/internal/spans"
)

// buildLinear builds an NFA accepting exactly the given item sequence.
func buildLinear(vars spans.VarSet, w refwords.Word) *NFA {
	n := NewNFA(vars)
	cur := n.Start
	for _, it := range w {
		next := n.AddState()
		switch it.Kind {
		case refwords.KindLetter:
			n.AddLetter(cur, it.Letter, next)
		case refwords.KindMarker:
			n.AddMarker(cur, Marker{Var: it.Var, Close: it.Close}, next)
		}
		cur = next
	}
	n.SetFinal(cur)
	return n
}

// exampleSpanner builds the spanner of Example 1.1:
// x▷(a|b)*◁x · y▷b◁y · z▷(a|b)*◁z.
func exampleSpanner() *NFA {
	vars := spans.NewVarSet("x", "y", "z")
	n := NewNFA(vars)
	s1 := n.AddState() // after x▷, loop on a,b
	s2 := n.AddState() // after ◁x
	s3 := n.AddState() // after y▷
	s4 := n.AddState() // after b
	s5 := n.AddState() // after ◁y
	s6 := n.AddState() // after z▷, loop on a,b
	s7 := n.AddState() // after ◁z, final
	n.AddMarker(n.Start, Marker{Var: "x"}, s1)
	n.AddLetter(s1, 'a', s1)
	n.AddLetter(s1, 'b', s1)
	n.AddMarker(s1, Marker{Var: "x", Close: true}, s2)
	n.AddMarker(s2, Marker{Var: "y"}, s3)
	n.AddLetter(s3, 'b', s4)
	n.AddMarker(s4, Marker{Var: "y", Close: true}, s5)
	n.AddMarker(s5, Marker{Var: "z"}, s6)
	n.AddLetter(s6, 'a', s6)
	n.AddLetter(s6, 'b', s6)
	n.AddMarker(s6, Marker{Var: "z", Close: true}, s7)
	n.SetFinal(s7)
	return n
}

func TestNFABasics(t *testing.T) {
	n := exampleSpanner()
	if n.NumStates() != 8 {
		t.Errorf("NumStates = %d", n.NumStates())
	}
	if n.Empty() {
		t.Error("Empty = true")
	}
	if got := n.Alphabet(); len(got) != 2 || got[0] != 'a' || got[1] != 'b' {
		t.Errorf("Alphabet = %v", got)
	}
	if n.CountTransitions() != 11 {
		t.Errorf("CountTransitions = %d", n.CountTransitions())
	}
}

func TestEpsClosure(t *testing.T) {
	n := NewNFA(nil)
	a := n.AddState()
	b := n.AddState()
	c := n.AddState()
	n.AddEps(n.Start, a)
	n.AddEps(a, b)
	n.AddLetter(b, 'x', c)
	got := n.EpsClosure([]int{n.Start})
	if len(got) != 3 || got[0] != 0 || got[1] != a || got[2] != b {
		t.Errorf("EpsClosure = %v", got)
	}
}

func TestTrimAndEmpty(t *testing.T) {
	n := NewNFA(nil)
	dead := n.AddState()
	n.AddLetter(n.Start, 'a', dead) // dead end: no final state
	if !n.Empty() {
		t.Error("language should be empty")
	}
	tr := n.Trim()
	if tr.NumStates() != 1 || !tr.Empty() {
		t.Errorf("Trim of empty = %d states", tr.NumStates())
	}

	m := exampleSpanner()
	useless := m.AddState()
	m.AddLetter(useless, 'a', useless)
	tm := m.Trim()
	if tm.NumStates() != 8 {
		t.Errorf("Trim kept %d states, want 8", tm.NumStates())
	}
	if tm.Empty() {
		t.Error("trimmed spanner empty")
	}
}

func TestShortestWitness(t *testing.T) {
	n := exampleSpanner()
	w := n.ShortestWitness()
	if w == nil {
		t.Fatal("no witness")
	}
	// Shortest witness is x▷◁x y▷b◁y z▷◁z = document "b".
	if got := string(w.Erase()); got != "b" {
		t.Errorf("witness doc = %q", got)
	}
	if err := w.Validate(n.Vars, true); err != nil {
		t.Errorf("witness invalid: %v", err)
	}

	empty := NewNFA(nil)
	if empty.ShortestWitness() != nil {
		t.Error("empty automaton returned witness")
	}
}

func TestValidate(t *testing.T) {
	n := exampleSpanner()
	if err := n.Validate(true); err != nil {
		t.Errorf("valid functional automaton rejected: %v", err)
	}

	// Automaton binding x twice.
	vars := spans.NewVarSet("x")
	bad := buildLinear(vars, refwords.FromString(">xa<x>xb<x"))
	if err := bad.Validate(false); err == nil {
		t.Error("double binding accepted")
	}

	// Automaton that may skip x: valid schemaless, invalid functional.
	skip := NewNFA(vars)
	end := skip.AddState()
	mid := skip.AddState()
	skip.AddLetter(skip.Start, 'a', end)
	skip.AddMarker(skip.Start, Marker{Var: "x"}, mid)
	skip.AddMarker(mid, Marker{Var: "x", Close: true}, end)
	skip.SetFinal(end)
	if err := skip.Validate(false); err != nil {
		t.Errorf("schemaless validation rejected: %v", err)
	}
	if err := skip.Validate(true); err == nil {
		t.Error("functional validation accepted skipping automaton")
	}

	// Close before open.
	rev := buildLinear(vars, refwords.Word{refwords.CloseM("x"), refwords.Open("x")})
	if err := rev.Validate(false); err == nil {
		t.Error("close-before-open accepted")
	}

	// Unclosed open.
	open := buildLinear(vars, refwords.Word{refwords.Open("x")})
	if err := open.Validate(false); err == nil {
		t.Error("unclosed marker accepted")
	}
}

func TestMaskIndex(t *testing.T) {
	ix := NewMaskIndex(spans.NewVarSet("x", "y"))
	mx := ix.MaskOf(Marker{Var: "x"}, Marker{Var: "y", Close: true})
	if ix.Bit(Marker{Var: "x"}) != 0 || ix.Bit(Marker{Var: "y", Close: true}) != 3 {
		t.Error("bit layout wrong")
	}
	ms := ix.Markers(mx)
	if len(ms) != 2 || ms[0] != (Marker{Var: "x"}) || ms[1] != (Marker{Var: "y", Close: true}) {
		t.Errorf("Markers = %v", ms)
	}
	if got := ix.Project(mx, spans.NewVarSet("y")); got != ix.MaskOf(Marker{Var: "y", Close: true}) {
		t.Errorf("Project = %b", got)
	}
	other := NewMaskIndex(spans.NewVarSet("w", "x", "y"))
	tr := ix.Translate(mx, other)
	if tr != other.MaskOf(Marker{Var: "x"}, Marker{Var: "y", Close: true}) {
		t.Errorf("Translate = %b", tr)
	}
	if s := ix.String(mx); s != "{x▷,◁y}" {
		t.Errorf("String = %q", s)
	}
}

func TestDeterminizeAcceptance(t *testing.T) {
	n := exampleSpanner()
	d := Determinize(n)
	ix := d.Index

	// Document ababbab with tuple x=[1,4⟩ y=[4,5⟩ z=[5,8⟩ (row 2 of
	// Example 1.1): masks at boundaries 0,3,4 and 7.
	doc := []byte("ababbab")
	masks := make([]Mask, len(doc)+1)
	masks[0] = ix.MaskOf(Marker{Var: "x"})
	masks[3] = ix.MaskOf(Marker{Var: "x", Close: true}, Marker{Var: "y"})
	masks[4] = ix.MaskOf(Marker{Var: "y", Close: true}, Marker{Var: "z"})
	masks[7] = ix.MaskOf(Marker{Var: "z", Close: true})
	if !d.AcceptsExtended(doc, masks) {
		t.Error("valid tuple rejected")
	}

	// y over an 'a' (position 1 of doc index 0) must be rejected:
	bad := make([]Mask, len(doc)+1)
	bad[0] = ix.MaskOf(Marker{Var: "x"})
	bad[2] = ix.MaskOf(Marker{Var: "x", Close: true}, Marker{Var: "y"})
	bad[3] = ix.MaskOf(Marker{Var: "y", Close: true}, Marker{Var: "z"})
	bad[7] = ix.MaskOf(Marker{Var: "z", Close: true})
	if d.AcceptsExtended(doc, bad) {
		t.Error("tuple with y over 'a' accepted")
	}

	// No masks at all: not a valid subword-marked word for this spanner.
	if d.AcceptsExtended(doc, nil) {
		t.Error("unmarked document accepted")
	}
}

func TestDeterminizeIsDeterministic(t *testing.T) {
	d := Determinize(exampleSpanner())
	for q := range d.Final {
		seenB := map[byte]bool{}
		for b := range d.Letters[q] {
			if seenB[b] {
				t.Fatal("duplicate letter transition")
			}
			seenB[b] = true
		}
	}
}

func TestEquivalentAndContains(t *testing.T) {
	n1 := exampleSpanner()
	d1 := Determinize(n1)

	// A second, structurally different automaton for the same spanner:
	// route through normalization.
	n2 := Normalize(n1)
	d2 := Determinize(n2)
	if !Equivalent(d1, d2) {
		t.Error("normalized automaton not equivalent")
	}
	if !Contains(d1, d2) || !Contains(d2, d1) {
		t.Error("mutual containment fails")
	}

	// Restrict x to even... actually to 'a'* only: strictly contained.
	vars := spans.NewVarSet("x", "y", "z")
	n3 := NewNFA(vars)
	s1 := n3.AddState()
	s2 := n3.AddState()
	s3 := n3.AddState()
	s4 := n3.AddState()
	s5 := n3.AddState()
	s6 := n3.AddState()
	s7 := n3.AddState()
	n3.AddMarker(n3.Start, Marker{Var: "x"}, s1)
	n3.AddLetter(s1, 'a', s1) // only a's inside x
	n3.AddMarker(s1, Marker{Var: "x", Close: true}, s2)
	n3.AddMarker(s2, Marker{Var: "y"}, s3)
	n3.AddLetter(s3, 'b', s4)
	n3.AddMarker(s4, Marker{Var: "y", Close: true}, s5)
	n3.AddMarker(s5, Marker{Var: "z"}, s6)
	n3.AddLetter(s6, 'a', s6)
	n3.AddLetter(s6, 'b', s6)
	n3.AddMarker(s6, Marker{Var: "z", Close: true}, s7)
	n3.SetFinal(s7)
	d3 := Determinize(n3)
	if !Contains(d3, d1) {
		t.Error("restricted spanner not contained")
	}
	if Contains(d1, d3) {
		t.Error("reverse containment should fail")
	}
	if Equivalent(d1, d3) {
		t.Error("distinct spanners reported equivalent")
	}
}

func TestUnionConcatStar(t *testing.T) {
	a := buildLinear(nil, refwords.FromString("ab"))
	b := buildLinear(nil, refwords.FromString("cd"))
	u := Union(a, b)
	du := Determinize(u)
	if !du.AcceptsExtended([]byte("ab"), nil) || !du.AcceptsExtended([]byte("cd"), nil) {
		t.Error("union misses operand word")
	}
	if du.AcceptsExtended([]byte("ad"), nil) {
		t.Error("union accepts junk")
	}

	c := Concat(a, b)
	dc := Determinize(c)
	if !dc.AcceptsExtended([]byte("abcd"), nil) {
		t.Error("concat misses abcd")
	}
	if dc.AcceptsExtended([]byte("ab"), nil) {
		t.Error("concat accepts prefix")
	}

	s := Star(a)
	ds := Determinize(s)
	for _, w := range []string{"", "ab", "abab", "ababab"} {
		if !ds.AcceptsExtended([]byte(w), nil) {
			t.Errorf("star misses %q", w)
		}
	}
	if ds.AcceptsExtended([]byte("aba"), nil) {
		t.Error("star accepts junk")
	}
}

func TestConcatSharedVarsPanics(t *testing.T) {
	vars := spans.NewVarSet("x")
	a := buildLinear(vars, refwords.FromString(">xa<x"))
	defer func() {
		if recover() == nil {
			t.Error("Concat with shared variables did not panic")
		}
	}()
	Concat(a, a)
}

func TestStarWithMarkersPanics(t *testing.T) {
	vars := spans.NewVarSet("x")
	a := buildLinear(vars, refwords.FromString(">xa<x"))
	defer func() {
		if recover() == nil {
			t.Error("Star over markers did not panic")
		}
	}()
	Star(a)
}

func TestProject(t *testing.T) {
	n := exampleSpanner()
	p := Project(n, spans.NewVarSet("y"))
	if !p.Vars.Equal(spans.NewVarSet("y")) {
		t.Errorf("Vars = %v", p.Vars)
	}
	d := Determinize(p)
	ix := d.Index
	doc := []byte("ab")
	masks := make([]Mask, 3)
	masks[1] = ix.MaskOf(Marker{Var: "y"})
	masks[2] = ix.MaskOf(Marker{Var: "y", Close: true})
	if !d.AcceptsExtended(doc, masks) {
		t.Error("projection rejects valid tuple")
	}
	// y over 'a' still rejected.
	masks0 := make([]Mask, 3)
	masks0[0] = ix.MaskOf(Marker{Var: "y"})
	masks0[1] = ix.MaskOf(Marker{Var: "y", Close: true})
	if d.AcceptsExtended(doc, masks0) {
		t.Error("projection accepts y over 'a'")
	}
}

func TestJoinSharedVariable(t *testing.T) {
	// a: binds x to a single letter 'a' anywhere; b: binds x to a letter
	// followed by 'b'. Join: x = 'a' directly followed by 'b'.
	mk := func(follow byte, need bool) *NFA {
		vars := spans.NewVarSet("x")
		n := NewNFA(vars)
		loop := n.Start
		n.AddLetter(loop, 'a', loop)
		n.AddLetter(loop, 'b', loop)
		s1 := n.AddState()
		s2 := n.AddState()
		n.AddMarker(loop, Marker{Var: "x"}, s1)
		n.AddLetter(s1, 'a', s2)
		s3 := n.AddState()
		n.AddMarker(s2, Marker{Var: "x", Close: true}, s3)
		end := s3
		if need {
			s4 := n.AddState()
			n.AddLetter(s3, follow, s4)
			end = s4
		}
		n.AddLetter(end, 'a', end)
		n.AddLetter(end, 'b', end)
		n.SetFinal(end)
		return n
	}
	a := mk(0, false)
	b := mk('b', true)
	j := Join(a, b)
	d := Determinize(j)
	ix := d.Index

	doc := []byte("aab")
	// x = [2,3⟩ ('a' followed by 'b'): accepted.
	masks := make([]Mask, 4)
	masks[1] = ix.MaskOf(Marker{Var: "x"})
	masks[2] = ix.MaskOf(Marker{Var: "x", Close: true})
	if !d.AcceptsExtended(doc, masks) {
		t.Error("join rejects valid tuple")
	}
	// x = [1,2⟩ ('a' followed by 'a'): rejected.
	masks2 := make([]Mask, 4)
	masks2[0] = ix.MaskOf(Marker{Var: "x"})
	masks2[1] = ix.MaskOf(Marker{Var: "x", Close: true})
	if d.AcceptsExtended(doc, masks2) {
		t.Error("join accepts tuple violating second operand")
	}
}

func TestIntersectLanguages(t *testing.T) {
	// L1 = a(a|b)*, L2 = (a|b)*b — the γ construction of Section 3.2.
	l1 := NewNFA(nil)
	s := l1.AddState()
	l1.AddLetter(l1.Start, 'a', s)
	l1.AddLetter(s, 'a', s)
	l1.AddLetter(s, 'b', s)
	l1.SetFinal(s)

	l2 := NewNFA(nil)
	f := l2.AddState()
	l2.AddLetter(l2.Start, 'a', l2.Start)
	l2.AddLetter(l2.Start, 'b', l2.Start)
	l2.AddLetter(l2.Start, 'b', f)
	l2.SetFinal(f)

	in := IntersectLanguages(l1, l2)
	d := Determinize(in)
	for _, c := range []struct {
		w    string
		want bool
	}{
		{"ab", true}, {"aab", true}, {"abab", true},
		{"a", false}, {"b", false}, {"ba", false}, {"bab", false},
	} {
		if got := d.AcceptsExtended([]byte(c.w), nil); got != c.want {
			t.Errorf("intersection on %q = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestRenameVar(t *testing.T) {
	vars := spans.NewVarSet("x")
	a := buildLinear(vars, refwords.FromString(">xa<x"))
	r := RenameVar(a, "x", "y")
	if !r.Vars.Equal(spans.NewVarSet("y")) {
		t.Errorf("Vars = %v", r.Vars)
	}
	d := Determinize(r)
	ix := d.Index
	masks := make([]Mask, 2)
	masks[0] = ix.MaskOf(Marker{Var: "y"})
	masks[1] = ix.MaskOf(Marker{Var: "y", Close: true})
	if !d.AcceptsExtended([]byte("a"), masks) {
		t.Error("renamed automaton rejects y-marked word")
	}
}

func TestNormalizePreservesSpanner(t *testing.T) {
	n := exampleSpanner()
	m := Normalize(n)
	if err := m.Validate(true); err != nil {
		t.Errorf("normalized automaton invalid: %v", err)
	}
	if !Equivalent(Determinize(n), Determinize(m)) {
		t.Error("normalization changed the spanner")
	}
}
