package automata

import (
	"math/rand"
	"testing"

	"docspanner/internal/spans"
)

func TestMinimizePreservesSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := randomSpanner(rng, []spans.Var{"x", "y"})
		d := Determinize(n)
		m := Minimize(d)
		if !Equivalent(d, m) {
			t.Fatalf("trial %d: minimization changed the spanner", trial)
		}
		if m.NumStates() > d.NumStates() {
			t.Fatalf("trial %d: minimization grew the automaton (%d -> %d)",
				trial, d.NumStates(), m.NumStates())
		}
	}
}

func TestMinimizeShrinksRedundancy(t *testing.T) {
	// Union of a spanner with itself doubles states; the minimal
	// automaton must collapse back to (at most) the size of the single
	// automaton's minimization.
	n := exampleSpanner()
	single := Minimize(Determinize(n))
	doubled := Minimize(Determinize(Union(n, n.Clone())))
	if doubled.NumStates() != single.NumStates() {
		t.Errorf("union-with-self minimized to %d states, single to %d",
			doubled.NumStates(), single.NumStates())
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	d := Determinize(exampleSpanner())
	m1 := Minimize(d)
	m2 := Minimize(m1)
	if m1.NumStates() != m2.NumStates() {
		t.Errorf("second minimization changed size: %d -> %d", m1.NumStates(), m2.NumStates())
	}
	if !Equivalent(m1, m2) {
		t.Error("second minimization changed the language")
	}
}

func TestMinimizeEmptyLanguage(t *testing.T) {
	n := NewNFA(nil) // no final state
	m := Minimize(Determinize(n))
	if m.NumStates() != 1 || m.Final[m.Start] {
		t.Errorf("empty language minimized to %d states", m.NumStates())
	}
}

func TestMinimizeDropsDeadStates(t *testing.T) {
	n := exampleSpanner()
	// Dead branch: reachable states that never accept.
	dead := n.AddState()
	n.AddLetter(n.Start, 'a', dead)
	dead2 := n.AddState()
	n.AddLetter(dead, 'b', dead2)
	d := Determinize(n)
	m := Minimize(d)
	if !Equivalent(Determinize(exampleSpanner()), m) {
		t.Error("minimized automaton differs from the clean spanner")
	}
}

func TestMinimizeEquivalenceSpeedup(t *testing.T) {
	// Equivalence via minimized automata must agree with direct check.
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 10; trial++ {
		a := randomSpanner(rng, []spans.Var{"x"})
		b := randomSpanner(rng, []spans.Var{"x"})
		direct := Equivalent(Determinize(a), Determinize(b))
		viaMin := Equivalent(Minimize(Determinize(a)), Minimize(Determinize(b)))
		if direct != viaMin {
			t.Fatalf("trial %d: equivalence disagreement (%v vs %v)", trial, direct, viaMin)
		}
	}
}

func TestDifferenceDEVADirect(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 10; trial++ {
		a := randomSpanner(rng, []spans.Var{"x"})
		b := randomSpanner(rng, []spans.Var{"x"})
		da, db := Determinize(a), Determinize(b)
		diff := Difference(da, db)
		// diff ∪ (a ∩ b-ish)... check the defining property instead:
		// L(diff) ⊆ L(a) and L(diff) ∩ L(b) = ∅ and a ⊆ diff ∪ b.
		if !Contains(diff, da) {
			t.Fatalf("trial %d: difference not contained in a", trial)
		}
		inter := Difference(diff, Difference(diff, db)) // diff ∩ b
		if !inter.emptyLanguage() {
			t.Fatalf("trial %d: difference intersects b", trial)
		}
	}
}

// emptyLanguage reports whether the DEVA accepts nothing (reachable final
// state search).
func (d *DEVA) emptyLanguage() bool {
	seen := make([]bool, d.NumStates())
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Final[q] {
			return false
		}
		push := func(r int) {
			if r >= 0 && !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
		for _, r := range d.Letters[q] {
			push(r)
		}
		for _, r := range d.Masks[q] {
			push(r)
		}
	}
	return true
}
