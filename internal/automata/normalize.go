package automata

// DEVAToNFA converts a deterministic extended vset-automaton back into an
// NFA whose marker transitions follow the canonical marker order (each
// mask transition expands into the sorted sequence of its single markers).
// This is the normalization "Option 1" of Section 2.2: the resulting NFA
// presents consecutive markers in one fixed order, which makes products
// such as Join sound on shared variables.
func DEVAToNFA(d *DEVA) *NFA {
	out := NewNFA(d.Index.Vars())
	base := out.NumStates()
	for range d.Final {
		out.AddState()
	}
	out.AddEps(out.Start, base+d.Start)
	for q := range d.Final {
		if d.Final[q] {
			out.SetFinal(base + q)
		}
		for b, r := range d.Letters[q] {
			out.AddLetter(base+q, b, base+r)
		}
		for m, r := range d.Masks[q] {
			markers := d.Index.Markers(m)
			cur := base + q
			for i, mk := range markers {
				var next int
				if i == len(markers)-1 {
					next = base + r
				} else {
					next = out.AddState()
				}
				out.AddMarker(cur, mk, next)
				cur = next
			}
		}
	}
	return out
}

// Normalize returns an equivalent NFA in canonical marker order by routing
// through determinization. The result represents the same spanner and can
// be exponentially larger (query complexity only).
func Normalize(n *NFA) *NFA {
	return DEVAToNFA(Determinize(n))
}
