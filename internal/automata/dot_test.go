package automata

import (
	"strings"
	"testing"

	"docspanner/internal/spans"
)

func TestNFADot(t *testing.T) {
	n := exampleSpanner()
	dot := n.Dot("example")
	for _, want := range []string{
		"digraph \"example\"",
		"doublecircle",
		"x▷",
		"◁z",
		"rankdir=LR",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q", want)
		}
	}
}

func TestNFADotRefs(t *testing.T) {
	vars := spans.NewVarSet("x")
	n := NewNFA(vars)
	s1 := n.AddState()
	s2 := n.AddState()
	s3 := n.AddState()
	n.AddMarker(n.Start, Marker{Var: "x"}, s1)
	n.AddLetter(s1, 'a', s1)
	n.AddMarker(s1, Marker{Var: "x", Close: true}, s2)
	n.AddRef(s2, "x", s3)
	n.AddEps(s3, s2)
	n.SetFinal(s3)
	dot := n.Dot("refs")
	if !strings.Contains(dot, "↩x") {
		t.Error("Dot missing reference edge")
	}
	if !strings.Contains(dot, "ε") {
		t.Error("Dot missing epsilon edge")
	}
}

func TestDEVADot(t *testing.T) {
	d := Determinize(exampleSpanner())
	dot := d.Dot("deva")
	for _, want := range []string{"digraph \"deva\"", "{x▷}", "doublecircle"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DEVA Dot missing %q", want)
		}
	}
}

func TestClassLabel(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"a", "a"},
		{"ab", "[ab]"},
		{"abc", "[a-c]"},
		{"abd", "[abd]"},
		{"abcxyz", "[a-cx-z]"},
	}
	for _, c := range cases {
		if got := classLabel([]byte(c.in)); got != c.want {
			t.Errorf("classLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
