package automata

import "math/bits"

// BoolMatrix is a square Boolean matrix over automaton states, stored as
// bitset rows. M[p][q] = 1 encodes "state q is reachable from state p by
// reading the string at hand" — the classical tool for running an NFA over
// an SLP-compressed string (Section 4.2 of the survey; cf. Lohrey's survey
// on SLP algorithmics).
//
// The words-per-row width is cached in the struct so the kernels below
// run on raw slices without re-deriving it per access. A BoolMatrix is
// safe for concurrent reads once fully built; mutation (Set, the *Into
// kernels) requires exclusive access.
type BoolMatrix struct {
	N    int
	w    int      // cached ceil(N/64): words per row
	rows []uint64 // N rows of w words each
}

// NewBoolMatrix returns the N×N all-zero matrix.
func NewBoolMatrix(n int) *BoolMatrix {
	w := (n + 63) / 64
	return &BoolMatrix{N: n, w: w, rows: make([]uint64, n*w)}
}

// IdentityMatrix returns the N×N identity.
func IdentityMatrix(n int) *BoolMatrix {
	m := NewBoolMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i)
	}
	return m
}

// Words returns the number of 64-bit words per row.
func (m *BoolMatrix) Words() int { return m.w }

// Set sets entry (p,q) to 1.
func (m *BoolMatrix) Set(p, q int) {
	m.rows[p*m.w+q/64] |= 1 << uint(q%64)
}

// Get returns entry (p,q).
func (m *BoolMatrix) Get(p, q int) bool {
	return m.rows[p*m.w+q/64]&(1<<uint(q%64)) != 0
}

// Row returns the bitset row of state p (shared storage).
func (m *BoolMatrix) Row(p int) []uint64 {
	return m.rows[p*m.w : (p+1)*m.w]
}

// Mul returns the Boolean matrix product m·other: (m·o)[p][q] = 1 iff
// there is an r with m[p][r] = o[r][q] = 1. Runs in O(N³/64) via word-wise
// row OR-ing.
func (m *BoolMatrix) Mul(other *BoolMatrix) *BoolMatrix {
	return NewBoolMatrix(m.N).MulInto(m, other)
}

// aliases reports whether two matrices share row storage — the aliasing
// the *Into kernels must reject, since they clear out before reading the
// operands. Head-pointer equality is the exact test here: matrices never
// share partial storage.
func aliases(a, b *BoolMatrix) bool {
	return a == b || (len(a.rows) > 0 && len(b.rows) > 0 && &a.rows[0] == &b.rows[0])
}

// MulInto computes the Boolean product a·b into out, reusing out's
// storage (out must be N×N like a and b; it is cleared first and must
// not alias a or b — aliasing panics, because the kernels clear out
// before reading the operands). Small or sparse inputs take the
// set-bit-scanning kernel; large dense inputs switch to the
// Four-Russians blocked product (fourrussians.go). Returns out.
func (out *BoolMatrix) MulInto(a, b *BoolMatrix) *BoolMatrix {
	if aliases(out, a) || aliases(out, b) {
		panic("automata: MulInto: out aliases an operand")
	}
	if a.N >= frMinN && a.popCount() > a.N*a.N/frDensityDen {
		return out.mulFourRussians(a, b)
	}
	return out.mulSparse(a, b)
}

// mulSparse is the set-bit-scanning product kernel: scan each set bit r
// of a's row p and OR b's contiguous row r into out's row p — O(N·k·w)
// words for k set bits per row, the sparse-friendly kernel.
func (out *BoolMatrix) mulSparse(a, b *BoolMatrix) *BoolMatrix {
	w := out.w
	clear(out.rows)
	for p := 0; p < a.N; p++ {
		src := a.rows[p*w : (p+1)*w]
		dst := out.rows[p*w : (p+1)*w]
		for wi, word := range src {
			base := wi * 64
			for word != 0 {
				r := base + bits.TrailingZeros64(word)
				word &= word - 1
				orow := b.rows[r*w : (r+1)*w : (r+1)*w]
				for k := range dst {
					dst[k] |= orow[k]
				}
			}
		}
	}
	return out
}

// Transpose returns mᵀ. Together with MulTransposed and ApplyLeft it
// gives cache-line-contiguous access to the columns of a matrix that is
// used as a right operand many times (transposing once, then streaming
// rows of the transpose, replaces strided column walks).
func (m *BoolMatrix) Transpose() *BoolMatrix {
	return NewBoolMatrix(m.N).TransposeInto(m)
}

// TransposeInto computes mᵀ into out (cleared first; must not alias m —
// aliasing panics). Matrices of order ≥ 64 go through the cache-friendly
// tile-wise kernel (fourrussians.go); smaller ones scan bits. Returns
// out.
func (out *BoolMatrix) TransposeInto(m *BoolMatrix) *BoolMatrix {
	if aliases(out, m) {
		panic("automata: TransposeInto: out aliases the operand")
	}
	if m.N >= transposeBlockN {
		return out.transposeBlocked(m)
	}
	return out.transposeScalar(m)
}

// transposeScalar is the bit-at-a-time transpose kernel for small
// matrices.
func (out *BoolMatrix) transposeScalar(m *BoolMatrix) *BoolMatrix {
	w := m.w
	clear(out.rows)
	for p := 0; p < m.N; p++ {
		pw, pb := p/64, uint64(1)<<uint(p%64)
		src := m.rows[p*w : (p+1)*w]
		for wi, word := range src {
			base := wi * 64
			for word != 0 {
				q := base + bits.TrailingZeros64(word)
				word &= word - 1
				out.rows[q*w+pw] |= pb
			}
		}
	}
	return out
}

// MulTransposed returns m·b given bt = bᵀ: (m·b)[p][q] = 1 iff row p of
// m intersects row q of bt. Both operands are streamed row-contiguously
// — the dense-friendly kernel, O(N²·w) with perfect locality.
func (m *BoolMatrix) MulTransposed(bt *BoolMatrix) *BoolMatrix {
	return NewBoolMatrix(m.N).MulTransposedInto(m, bt)
}

// MulTransposedInto computes a·b into out given bt = bᵀ (out cleared
// first; must not alias a or bt — aliasing panics). Large inputs
// re-transpose bt into pooled scratch and take the Four-Russians blocked
// product, which beats the pairwise intersection scan as soon as most
// row pairs fail to intersect early. Returns out.
func (out *BoolMatrix) MulTransposedInto(a, bt *BoolMatrix) *BoolMatrix {
	if aliases(out, a) || aliases(out, bt) {
		panic("automata: MulTransposedInto: out aliases an operand")
	}
	if a.N >= frMinN {
		bw := getWords(len(bt.rows))
		b := &BoolMatrix{N: bt.N, w: bt.w, rows: bw}
		b.transposeBlocked(bt)
		out.mulFourRussians(a, b)
		putWords(bw)
		return out
	}
	return out.mulTransposedScalar(a, bt)
}

// mulTransposedScalar is the pairwise row-intersection kernel: row p of
// a against row q of bt with an early break on the first common word —
// O(N²·w) worst case with perfect locality, near O(N²) on dense inputs.
func (out *BoolMatrix) mulTransposedScalar(a, bt *BoolMatrix) *BoolMatrix {
	w := out.w
	clear(out.rows)
	for p := 0; p < a.N; p++ {
		arow := a.rows[p*w : (p+1)*w : (p+1)*w]
		dst := out.rows[p*w : (p+1)*w]
		for q := 0; q < bt.N; q++ {
			brow := bt.rows[q*w : (q+1)*w : (q+1)*w]
			for k := range arow {
				if arow[k]&brow[k] != 0 {
					dst[q/64] |= 1 << uint(q%64)
					break
				}
			}
		}
	}
	return out
}

// ApplyLeft returns the row vector v·m for a bitset vector v (reachable
// target states when starting from any state set in v).
func (m *BoolMatrix) ApplyLeft(v []uint64) []uint64 {
	return m.ApplyLeftInto(make([]uint64, m.w), v)
}

// ApplyLeftInto computes v·m into the scratch vector dst (length ≥
// Words(); cleared first; must not alias v — aliasing panics) and
// returns dst[:Words()]. Reusing one scratch vector across calls keeps
// hot loops allocation-free.
func (m *BoolMatrix) ApplyLeftInto(dst, v []uint64) []uint64 {
	w := m.w
	dst = dst[:w]
	if w > 0 && len(v) > 0 && &dst[0] == &v[0] {
		panic("automata: ApplyLeftInto: dst aliases v")
	}
	clear(dst)
	for wi, word := range v {
		base := wi * 64
		for word != 0 {
			p := base + bits.TrailingZeros64(word)
			word &= word - 1
			row := m.rows[p*w : (p+1)*w : (p+1)*w]
			for k := range dst {
				dst[k] |= row[k]
			}
		}
	}
	return dst
}

// ApplyRight returns the column image m·v: out[p] = 1 iff ∃q: m[p][q] ∧ v[q].
// This propagates "can reach acceptance" vectors backwards. When the same
// matrix is applied many times, ApplyLeft on its Transpose computes the
// same vector while touching only the rows set in v.
func (m *BoolMatrix) ApplyRight(v []uint64) []uint64 {
	return m.ApplyRightInto(make([]uint64, m.w), v)
}

// ApplyRightInto computes m·v into the scratch vector dst (length ≥
// Words(); cleared first; must not alias v — aliasing panics) and
// returns dst[:Words()].
func (m *BoolMatrix) ApplyRightInto(dst, v []uint64) []uint64 {
	w := m.w
	dst = dst[:w]
	if w > 0 && len(v) > 0 && &dst[0] == &v[0] {
		panic("automata: ApplyRightInto: dst aliases v")
	}
	clear(dst)
	for p := 0; p < m.N; p++ {
		row := m.rows[p*w : (p+1)*w : (p+1)*w]
		for k := range row {
			if row[k]&v[k] != 0 {
				dst[p/64] |= 1 << uint(p%64)
				break
			}
		}
	}
	return dst
}

// Equal reports entry-wise equality.
func (m *BoolMatrix) Equal(other *BoolMatrix) bool {
	if m.N != other.N {
		return false
	}
	for i := range m.rows {
		if m.rows[i] != other.rows[i] {
			return false
		}
	}
	return true
}

// BitGet reads bit q of a bitset vector.
func BitGet(v []uint64, q int) bool { return v[q/64]&(1<<uint(q%64)) != 0 }

// BitSet sets bit q of a bitset vector.
func BitSet(v []uint64, q int) { v[q/64] |= 1 << uint(q%64) }

// NewBitVec returns an all-zero bitset vector for n states.
func NewBitVec(n int) []uint64 { return make([]uint64, (n+63)/64) }
