package automata

import "math/bits"

// BoolMatrix is a square Boolean matrix over automaton states, stored as
// bitset rows. M[p][q] = 1 encodes "state q is reachable from state p by
// reading the string at hand" — the classical tool for running an NFA over
// an SLP-compressed string (Section 4.2 of the survey; cf. Lohrey's survey
// on SLP algorithmics).
type BoolMatrix struct {
	N    int
	rows []uint64 // N rows of ceil(N/64) words each
}

// NewBoolMatrix returns the N×N all-zero matrix.
func NewBoolMatrix(n int) *BoolMatrix {
	w := (n + 63) / 64
	return &BoolMatrix{N: n, rows: make([]uint64, n*w)}
}

// IdentityMatrix returns the N×N identity.
func IdentityMatrix(n int) *BoolMatrix {
	m := NewBoolMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i)
	}
	return m
}

func (m *BoolMatrix) words() int { return (m.N + 63) / 64 }

// Set sets entry (p,q) to 1.
func (m *BoolMatrix) Set(p, q int) {
	m.rows[p*m.words()+q/64] |= 1 << uint(q%64)
}

// Get returns entry (p,q).
func (m *BoolMatrix) Get(p, q int) bool {
	return m.rows[p*m.words()+q/64]&(1<<uint(q%64)) != 0
}

// Row returns the bitset row of state p (shared storage).
func (m *BoolMatrix) Row(p int) []uint64 {
	w := m.words()
	return m.rows[p*w : (p+1)*w]
}

// Mul returns the Boolean matrix product m·other: (m·o)[p][q] = 1 iff
// there is an r with m[p][r] = o[r][q] = 1. Runs in O(N³/64) via word-wise
// row OR-ing.
func (m *BoolMatrix) Mul(other *BoolMatrix) *BoolMatrix {
	out := NewBoolMatrix(m.N)
	w := m.words()
	for p := 0; p < m.N; p++ {
		src := m.Row(p)
		dst := out.rows[p*w : (p+1)*w]
		for wi, word := range src {
			for word != 0 {
				r := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				orow := other.rows[r*w : (r+1)*w]
				for k := range dst {
					dst[k] |= orow[k]
				}
			}
		}
	}
	return out
}

// ApplyLeft returns the row vector v·m for a bitset vector v (reachable
// target states when starting from any state set in v).
func (m *BoolMatrix) ApplyLeft(v []uint64) []uint64 {
	w := m.words()
	out := make([]uint64, w)
	for wi, word := range v {
		for word != 0 {
			p := wi*64 + bits.TrailingZeros64(word)
			word &= word - 1
			row := m.Row(p)
			for k := range out {
				out[k] |= row[k]
			}
		}
	}
	return out
}

// ApplyRight returns the column image m·v: out[p] = 1 iff ∃q: m[p][q] ∧ v[q].
// This propagates "can reach acceptance" vectors backwards.
func (m *BoolMatrix) ApplyRight(v []uint64) []uint64 {
	w := m.words()
	out := make([]uint64, w)
	for p := 0; p < m.N; p++ {
		row := m.Row(p)
		for k := range row {
			if row[k]&v[k] != 0 {
				out[p/64] |= 1 << uint(p%64)
				break
			}
		}
	}
	return out
}

// Equal reports entry-wise equality.
func (m *BoolMatrix) Equal(other *BoolMatrix) bool {
	if m.N != other.N {
		return false
	}
	for i := range m.rows {
		if m.rows[i] != other.rows[i] {
			return false
		}
	}
	return true
}

// BitGet reads bit q of a bitset vector.
func BitGet(v []uint64, q int) bool { return v[q/64]&(1<<uint(q%64)) != 0 }

// BitSet sets bit q of a bitset vector.
func BitSet(v []uint64, q int) { v[q/64] |= 1 << uint(q%64) }

// NewBitVec returns an all-zero bitset vector for n states.
func NewBitVec(n int) []uint64 { return make([]uint64, (n+63)/64) }
