package automata

import (
	"testing"

	"docspanner/internal/spans"
)

// blowupNFA builds the classic (a|b)*a(a|b)^k acceptor whose minimal
// DFA has 2^k states — the standard determinization-blowup witness.
func blowupNFA(k int) *NFA {
	n := NewNFA(nil)
	n.AddLetter(n.Start, 'a', n.Start)
	n.AddLetter(n.Start, 'b', n.Start)
	cur := n.AddState()
	n.AddLetter(n.Start, 'a', cur)
	for i := 0; i < k; i++ {
		next := n.AddState()
		n.AddLetter(cur, 'a', next)
		n.AddLetter(cur, 'b', next)
		cur = next
	}
	n.SetFinal(cur)
	return n
}

func TestDeterminizedStatesAtMostAgreesWithDeterminize(t *testing.T) {
	for _, n := range []*NFA{exampleSpanner(), blowupNFA(4), buildBoundaryHeavy()} {
		want := Determinize(n).NumStates()
		got, ok := DeterminizedStatesAtMost(n, want)
		if !ok || got != want {
			t.Errorf("DeterminizedStatesAtMost(limit=%d) = (%d, %v); Determinize has %d states",
				want, got, ok, want)
		}
		// One below the exact count must report a cutoff.
		if want > 1 {
			if _, ok := DeterminizedStatesAtMost(n, want-1); ok {
				t.Errorf("DeterminizedStatesAtMost(limit=%d) reported within-limit; automaton has %d states",
					want-1, want)
			}
		}
	}
}

func TestDeterminizedStatesAtMostCutsOffEarly(t *testing.T) {
	n := blowupNFA(12) // minimal DFA ~2^12 states
	states, ok := DeterminizedStatesAtMost(n, 64)
	if ok {
		t.Fatalf("blowup automaton reported within limit 64 (states=%d)", states)
	}
	if states <= 64 {
		t.Fatalf("cutoff returned %d states; want > limit", states)
	}
	// The cutoff must fire long before the full 2^12 construction.
	if states > 4096 {
		t.Fatalf("cutoff explored %d states; limit was 64", states)
	}
}

// buildBoundaryHeavy exercises the mask-transition path of the
// estimator: two variables opening and closing at one boundary.
func buildBoundaryHeavy() *NFA {
	n := NewNFA(spans.NewVarSet("x", "y"))
	s1 := n.AddState()
	s2 := n.AddState()
	s3 := n.AddState()
	s4 := n.AddState()
	n.AddMarker(n.Start, Marker{Var: "x"}, s1)
	n.AddMarker(n.Start, Marker{Var: "y"}, s1) // nondeterministic marker order
	n.AddMarker(s1, Marker{Var: "y"}, s2)
	n.AddMarker(s1, Marker{Var: "x"}, s2)
	n.AddLetter(s2, 'a', s3)
	n.AddMarker(s3, Marker{Var: "x", Close: true}, s4)
	n.AddMarker(s4, Marker{Var: "y", Close: true}, s4)
	n.SetFinal(s4)
	return n
}
