package automata

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the automaton in Graphviz DOT format: double circles are
// final states, marker transitions are labeled with the survey's x▷ / ◁x
// notation, reference transitions with ↩x, and ε-transitions are dashed.
func (n *NFA) Dot(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", name)
	fmt.Fprintf(&sb, "  start [shape=point];\n  start -> q%d;\n", n.Start)
	for q := range n.Final {
		if n.Final[q] {
			fmt.Fprintf(&sb, "  q%d [shape=doublecircle];\n", q)
		}
	}
	for q := range n.Final {
		for _, r := range n.Eps[q] {
			fmt.Fprintf(&sb, "  q%d -> q%d [label=\"ε\", style=dashed];\n", q, r)
		}
		// Group letter edges by target for compact labels.
		type key struct{ to int }
		byTarget := map[int][]byte{}
		for b, rs := range n.Letters[q] {
			for _, r := range rs {
				byTarget[r] = append(byTarget[r], b)
			}
		}
		targets := make([]int, 0, len(byTarget))
		for r := range byTarget {
			targets = append(targets, r)
		}
		sort.Ints(targets)
		for _, r := range targets {
			bs := byTarget[r]
			sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
			fmt.Fprintf(&sb, "  q%d -> q%d [label=%q];\n", q, r, classLabel(bs))
		}
		for m, rs := range n.Markers[q] {
			for _, r := range rs {
				fmt.Fprintf(&sb, "  q%d -> q%d [label=%q, color=blue];\n", q, r, m.String())
			}
		}
		for v, rs := range n.Refs[q] {
			for _, r := range rs {
				fmt.Fprintf(&sb, "  q%d -> q%d [label=\"↩%s\", color=red];\n", q, r, v)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// classLabel compresses a sorted byte list into a compact range label.
func classLabel(bs []byte) string {
	if len(bs) == 1 {
		return string(bs)
	}
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < len(bs); {
		j := i
		for j+1 < len(bs) && bs[j+1] == bs[j]+1 {
			j++
		}
		sb.WriteByte(bs[i])
		if j > i {
			if j > i+1 {
				sb.WriteByte('-')
			}
			sb.WriteByte(bs[j])
		}
		i = j + 1
	}
	sb.WriteByte(']')
	return sb.String()
}

// Dot renders the deterministic extended automaton: mask transitions are
// labeled with their marker sets.
func (d *DEVA) Dot(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", name)
	fmt.Fprintf(&sb, "  start [shape=point];\n  start -> q%d;\n", d.Start)
	for q := range d.Final {
		if d.Final[q] {
			fmt.Fprintf(&sb, "  q%d [shape=doublecircle];\n", q)
		}
	}
	for q := range d.Final {
		byTarget := map[int][]byte{}
		for b, r := range d.Letters[q] {
			byTarget[r] = append(byTarget[r], b)
		}
		targets := make([]int, 0, len(byTarget))
		for r := range byTarget {
			targets = append(targets, r)
		}
		sort.Ints(targets)
		for _, r := range targets {
			bs := byTarget[r]
			sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
			fmt.Fprintf(&sb, "  q%d -> q%d [label=%q];\n", q, r, classLabel(bs))
		}
		masks := make([]Mask, 0, len(d.Masks[q]))
		for m := range d.Masks[q] {
			masks = append(masks, m)
		}
		sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
		for _, m := range masks {
			fmt.Fprintf(&sb, "  q%d -> q%d [label=%q, color=blue];\n", q, d.Masks[q][m], d.Index.String(m))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
