package automata

import (
	"encoding/json"
	"fmt"
	"sort"

	"docspanner/internal/spans"
)

// Serialization of NFAs as a stable, versioned JSON schema, so compiled
// spanners can be persisted and shipped (e.g. precompiled extraction
// libraries) without re-parsing patterns.

type nfaJSON struct {
	Version int          `json:"version"`
	Vars    []string     `json:"vars"`
	States  int          `json:"states"`
	Start   int          `json:"start"`
	Final   []int        `json:"final"`
	Eps     [][2]int     `json:"eps,omitempty"`
	Letters []letterJSON `json:"letters,omitempty"`
	Markers []markerJSON `json:"markers,omitempty"`
	Refs    []refJSON    `json:"refs,omitempty"`
}

type letterJSON struct {
	From int    `json:"f"`
	Byte string `json:"b"`
	To   int    `json:"t"`
}

type markerJSON struct {
	From  int    `json:"f"`
	Var   string `json:"v"`
	Close bool   `json:"c,omitempty"`
	To    int    `json:"t"`
}

type refJSON struct {
	From int    `json:"f"`
	Var  string `json:"v"`
	To   int    `json:"t"`
}

// MarshalJSON encodes the automaton.
func (n *NFA) MarshalJSON() ([]byte, error) {
	out := nfaJSON{Version: 1, States: n.NumStates(), Start: n.Start}
	for _, v := range n.Vars {
		out.Vars = append(out.Vars, string(v))
	}
	for q, f := range n.Final {
		if f {
			out.Final = append(out.Final, q)
		}
	}
	for q := range n.Final {
		for _, r := range n.Eps[q] {
			out.Eps = append(out.Eps, [2]int{q, r})
		}
		bs := make([]int, 0, len(n.Letters[q]))
		for b := range n.Letters[q] {
			bs = append(bs, int(b))
		}
		sort.Ints(bs)
		for _, bi := range bs {
			for _, r := range n.Letters[q][byte(bi)] {
				out.Letters = append(out.Letters, letterJSON{q, string(byte(bi)), r})
			}
		}
		ms := make([]Marker, 0, len(n.Markers[q]))
		for m := range n.Markers[q] {
			ms = append(ms, m)
		}
		sort.Slice(ms, func(i, j int) bool {
			if ms[i].Var != ms[j].Var {
				return ms[i].Var < ms[j].Var
			}
			return !ms[i].Close && ms[j].Close
		})
		for _, m := range ms {
			for _, r := range n.Markers[q][m] {
				out.Markers = append(out.Markers, markerJSON{q, string(m.Var), m.Close, r})
			}
		}
		vs := make([]string, 0, len(n.Refs[q]))
		for v := range n.Refs[q] {
			vs = append(vs, string(v))
		}
		sort.Strings(vs)
		for _, v := range vs {
			for _, r := range n.Refs[q][spans.Var(v)] {
				out.Refs = append(out.Refs, refJSON{q, v, r})
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes an automaton serialized by MarshalJSON.
func (n *NFA) UnmarshalJSON(data []byte) error {
	var in nfaJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Version != 1 {
		return fmt.Errorf("automata: unsupported serialization version %d", in.Version)
	}
	if in.States < 1 {
		return fmt.Errorf("automata: invalid state count %d", in.States)
	}
	check := func(q int) error {
		if q < 0 || q >= in.States {
			return fmt.Errorf("automata: state %d out of range 0..%d", q, in.States-1)
		}
		return nil
	}
	if err := check(in.Start); err != nil {
		return err
	}
	vars := make([]spans.Var, len(in.Vars))
	for i, v := range in.Vars {
		vars[i] = spans.Var(v)
	}
	fresh := NewNFA(spans.NewVarSet(vars...))
	for i := 1; i < in.States; i++ {
		fresh.AddState()
	}
	fresh.Start = in.Start
	for _, q := range in.Final {
		if err := check(q); err != nil {
			return err
		}
		fresh.SetFinal(q)
	}
	for _, e := range in.Eps {
		if err := check(e[0]); err != nil {
			return err
		}
		if err := check(e[1]); err != nil {
			return err
		}
		fresh.AddEps(e[0], e[1])
	}
	for _, l := range in.Letters {
		if err := check(l.From); err != nil {
			return err
		}
		if err := check(l.To); err != nil {
			return err
		}
		if len(l.Byte) != 1 {
			return fmt.Errorf("automata: letter %q is not one byte", l.Byte)
		}
		fresh.AddLetter(l.From, l.Byte[0], l.To)
	}
	for _, m := range in.Markers {
		if err := check(m.From); err != nil {
			return err
		}
		if err := check(m.To); err != nil {
			return err
		}
		if !fresh.Vars.Contains(spans.Var(m.Var)) {
			return fmt.Errorf("automata: marker for undeclared variable %s", m.Var)
		}
		fresh.AddMarker(m.From, Marker{Var: spans.Var(m.Var), Close: m.Close}, m.To)
	}
	for _, r := range in.Refs {
		if err := check(r.From); err != nil {
			return err
		}
		if err := check(r.To); err != nil {
			return err
		}
		if !fresh.Vars.Contains(spans.Var(r.Var)) {
			return fmt.Errorf("automata: reference to undeclared variable %s", r.Var)
		}
		fresh.AddRef(r.From, spans.Var(r.Var), r.To)
	}
	*n = *fresh
	return nil
}
