package automata

import (
	"fmt"

	"docspanner/internal/spans"
)

// Union returns an NFA for L(a) ∪ L(b): the spanner union of the two
// represented spanners. The result's variable set is the union of the
// operands'. Under the classical (functional) semantics the operands
// should have equal variable sets; under the schemaless semantics any
// combination is meaningful (Section 2.2).
func Union(a, b *NFA) *NFA {
	out := NewNFA(a.Vars.Union(b.Vars))
	oa := embed(out, a)
	ob := embed(out, b)
	out.AddEps(out.Start, oa)
	out.AddEps(out.Start, ob)
	return out
}

// Concat returns an NFA for L(a)·L(b). It is the building block for regex
// compilation; for spanners it corresponds to splitting the document.
// The operands must not share variables (a subword-marked word may contain
// each marker only once); Concat panics otherwise.
func Concat(a, b *NFA) *NFA {
	if len(a.Vars.Intersect(b.Vars)) > 0 {
		panic(fmt.Sprintf("automata: Concat operands share variables %v", a.Vars.Intersect(b.Vars)))
	}
	out := NewNFA(a.Vars.Union(b.Vars))
	oa := embed(out, a)
	ob := embed(out, b)
	out.AddEps(out.Start, oa)
	// Connect finals of a to start of b, clearing a's finals.
	base := oa
	for q := range a.Final {
		if a.Final[q] {
			out.Final[base+q] = false
			out.AddEps(base+q, ob)
		}
	}
	return out
}

// Star returns an NFA for L(a)*. The operand must bind no variables
// (markers under a star would repeat); Star panics otherwise.
func Star(a *NFA) *NFA {
	if a.hasMarkers() {
		panic("automata: Star over an automaton with variable markers")
	}
	out := NewNFA(a.Vars)
	oa := embed(out, a)
	out.AddEps(out.Start, oa)
	out.SetFinal(out.Start)
	base := oa
	for q := range a.Final {
		if a.Final[q] {
			out.AddEps(base+q, oa)
			// finals of a stay final in out (embedded as such)
		}
	}
	return out
}

func (n *NFA) hasMarkers() bool {
	for _, tr := range n.Markers {
		if len(tr) > 0 {
			return true
		}
	}
	return false
}

// embed copies all states and transitions of src into dst and returns the
// index of src's start state inside dst. Final states keep their flag.
func embed(dst *NFA, src *NFA) int {
	base := dst.NumStates()
	for range src.Final {
		dst.AddState()
	}
	for q := range src.Final {
		if src.Final[q] {
			dst.SetFinal(base + q)
		}
		for _, r := range src.Eps[q] {
			dst.AddEps(base+q, base+r)
		}
		for b, rs := range src.Letters[q] {
			for _, r := range rs {
				dst.AddLetter(base+q, b, base+r)
			}
		}
		for m, rs := range src.Markers[q] {
			for _, r := range rs {
				dst.AddMarker(base+q, m, base+r)
			}
		}
		for v, rs := range src.Refs[q] {
			for _, r := range rs {
				dst.AddRef(base+q, v, base+r)
			}
		}
	}
	return base + src.Start
}

// Project returns the spanner projection π_keep(a): markers of variables
// outside keep become ε-transitions, and the variable set shrinks to
// keep ∩ Vars(a).
func Project(a *NFA, keep spans.VarSet) *NFA {
	out := NewNFA(a.Vars.Intersect(keep))
	base := out.NumStates()
	for range a.Final {
		out.AddState()
	}
	out.AddEps(out.Start, base+a.Start)
	for q := range a.Final {
		if a.Final[q] {
			out.SetFinal(base + q)
		}
		for _, r := range a.Eps[q] {
			out.AddEps(base+q, base+r)
		}
		for b, rs := range a.Letters[q] {
			for _, r := range rs {
				out.AddLetter(base+q, b, base+r)
			}
		}
		for m, rs := range a.Markers[q] {
			for _, r := range rs {
				if keep.Contains(m.Var) {
					out.AddMarker(base+q, m, base+r)
				} else {
					out.AddEps(base+q, base+r)
				}
			}
		}
	}
	return out
}

// Join returns the natural join a ⋈ b of two regular spanners as an NFA:
// letter transitions are synchronized (both automata read the same
// document), markers of shared variables are synchronized (shared
// variables must extract identical spans), and markers of private
// variables interleave freely. This is the closure construction behind
// the core-simplification lemma (Sections 2.2 and 2.3 of the survey).
func Join(a, b *NFA) *NFA {
	shared := a.Vars.Intersect(b.Vars)
	out := NewNFA(a.Vars.Union(b.Vars))

	type pair struct{ qa, qb int }
	ids := map[pair]int{}
	var order []pair

	intern := func(p pair) int {
		if id, ok := ids[p]; ok {
			return id
		}
		var id int
		if len(ids) == 0 {
			id = out.Start
		} else {
			id = out.AddState()
		}
		ids[p] = id
		order = append(order, p)
		if a.Final[p.qa] && b.Final[p.qb] {
			out.SetFinal(id)
		}
		return id
	}
	intern(pair{a.Start, b.Start})

	for i := 0; i < len(order); i++ {
		p := order[i]
		src := ids[p]

		// ε moves on either side.
		for _, r := range a.Eps[p.qa] {
			out.AddEps(src, intern(pair{r, p.qb}))
		}
		for _, r := range b.Eps[p.qb] {
			out.AddEps(src, intern(pair{p.qa, r}))
		}
		// Synchronized letters.
		for c, ras := range a.Letters[p.qa] {
			rbs, ok := b.Letters[p.qb][c]
			if !ok {
				continue
			}
			for _, ra := range ras {
				for _, rb := range rbs {
					out.AddLetter(src, c, intern(pair{ra, rb}))
				}
			}
		}
		// Markers.
		for m, ras := range a.Markers[p.qa] {
			if shared.Contains(m.Var) {
				rbs, ok := b.Markers[p.qb][m]
				if !ok {
					continue
				}
				for _, ra := range ras {
					for _, rb := range rbs {
						out.AddMarker(src, m, intern(pair{ra, rb}))
					}
				}
			} else {
				for _, ra := range ras {
					out.AddMarker(src, m, intern(pair{ra, p.qb}))
				}
			}
		}
		for m, rbs := range b.Markers[p.qb] {
			if shared.Contains(m.Var) {
				continue // handled above, synchronized
			}
			for _, rb := range rbs {
				out.AddMarker(src, m, intern(pair{p.qa, rb}))
			}
		}
	}
	return out
}

// IntersectLanguages returns an NFA accepting L(a) ∩ L(b) where both are
// plain automata over Σ (no markers). Used for refining variable content
// languages in the core→refl translation (Section 3.2) and for the
// intersection-non-emptiness embedding of Section 2.4.
func IntersectLanguages(a, b *NFA) *NFA {
	if a.hasMarkers() || b.hasMarkers() {
		panic("automata: IntersectLanguages requires marker-free operands")
	}
	out := NewNFA(nil)
	type pair struct{ qa, qb int }
	ids := map[pair]int{}
	var order []pair
	intern := func(p pair) int {
		if id, ok := ids[p]; ok {
			return id
		}
		var id int
		if len(ids) == 0 {
			id = out.Start
		} else {
			id = out.AddState()
		}
		ids[p] = id
		order = append(order, p)
		if a.Final[p.qa] && b.Final[p.qb] {
			out.SetFinal(id)
		}
		return id
	}
	intern(pair{a.Start, b.Start})
	for i := 0; i < len(order); i++ {
		p := order[i]
		src := ids[p]
		for _, r := range a.Eps[p.qa] {
			out.AddEps(src, intern(pair{r, p.qb}))
		}
		for _, r := range b.Eps[p.qb] {
			out.AddEps(src, intern(pair{p.qa, r}))
		}
		for c, ras := range a.Letters[p.qa] {
			rbs, ok := b.Letters[p.qb][c]
			if !ok {
				continue
			}
			for _, ra := range ras {
				for _, rb := range rbs {
					out.AddLetter(src, c, intern(pair{ra, rb}))
				}
			}
		}
	}
	return out
}

// RenameVar returns a copy of a in which variable old is renamed to new
// on every marker transition. The new name must not already occur.
func RenameVar(a *NFA, oldVar, newVar spans.Var) *NFA {
	if a.Vars.Contains(newVar) {
		panic(fmt.Sprintf("automata: RenameVar target %s already in use", newVar))
	}
	out := a.Clone()
	out.Vars = a.Vars.Minus(spans.NewVarSet(oldVar)).Union(spans.NewVarSet(newVar))
	for q := range out.Markers {
		if out.Markers[q] == nil {
			continue
		}
		nm := make(map[Marker][]int, len(out.Markers[q]))
		for m, rs := range out.Markers[q] {
			if m.Var == oldVar {
				m.Var = newVar
			}
			nm[m] = rs
		}
		out.Markers[q] = nm
	}
	return out
}
