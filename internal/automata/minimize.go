package automata

import "sort"

// Minimize returns an equivalent deterministic extended vset-automaton
// with the minimum number of states (Moore partition refinement over the
// combined alphabet of letters and marker sets, with an implicit sink for
// missing transitions). Useful before Equivalent/Contains and before
// building enumeration indexes — matrix sizes in the compressed setting
// are quadratic-to-cubic in the state count.
func Minimize(d *DEVA) *DEVA {
	letters, masks := d.AlphabetAndMasks()
	nq := d.NumStates()

	// Trim: keep states reachable from start and co-reachable to final.
	reach := make([]bool, nq)
	stack := []int{d.Start}
	reach[d.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		step := func(r int) {
			if r >= 0 && !reach[r] {
				reach[r] = true
				stack = append(stack, r)
			}
		}
		for _, r := range d.Letters[q] {
			step(r)
		}
		for _, r := range d.Masks[q] {
			step(r)
		}
	}
	co := make([]bool, nq)
	for q := 0; q < nq; q++ {
		if d.Final[q] {
			co[q] = true
			stack = append(stack, q)
		}
	}
	rev := make([][]int, nq)
	for q := 0; q < nq; q++ {
		for _, r := range d.Letters[q] {
			rev[r] = append(rev[r], q)
		}
		for _, r := range d.Masks[q] {
			rev[r] = append(rev[r], q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !co[p] {
				co[p] = true
				stack = append(stack, p)
			}
		}
	}
	useful := func(q int) bool { return q >= 0 && reach[q] && co[q] }

	if !useful(d.Start) {
		// Empty language.
		out := &DEVA{Index: d.Index}
		out.addState()
		out.Start = 0
		return out
	}

	// Moore refinement: class 0 = sink; useful states partitioned by
	// finality initially.
	const sink = 0
	class := make([]int, nq)
	for q := 0; q < nq; q++ {
		switch {
		case !useful(q):
			class[q] = sink
		case d.Final[q]:
			class[q] = 2
		default:
			class[q] = 1
		}
	}
	classOf := func(q int) int {
		if q < 0 || !useful(q) {
			return sink
		}
		return class[q]
	}

	type sig struct {
		base int
		key  string
	}
	for {
		// Signature: own class + successor classes per symbol.
		sigs := make(map[sig][]int)
		for q := 0; q < nq; q++ {
			if !useful(q) {
				continue
			}
			key := make([]byte, 0, len(letters)+len(masks))
			for _, b := range letters {
				key = append(key, byte(classOf(d.Step(q, b))))
			}
			for _, m := range masks {
				key = append(key, byte(classOf(d.StepMask(q, m))))
			}
			s := sig{class[q], string(key)}
			sigs[s] = append(sigs[s], q)
		}
		// Deterministic renumbering: sort signature groups by their
		// smallest member.
		groups := make([][]int, 0, len(sigs))
		for _, g := range sigs {
			sort.Ints(g)
			groups = append(groups, g)
		}
		sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
		next := make([]int, nq)
		for q := range next {
			next[q] = sink
		}
		for i, g := range groups {
			for _, q := range g {
				next[q] = i + 1
			}
		}
		same := true
		for q := 0; q < nq; q++ {
			if useful(q) && next[q] != class[q] {
				same = false
			}
		}
		// Also detect pure renumberings: compare group count.
		if same || len(groups) == numClasses(class, useful, nq) {
			class = next
			break
		}
		class = next
	}

	// Build the quotient automaton.
	out := &DEVA{Index: d.Index}
	id := map[int]int{}
	classes := []int{}
	for q := 0; q < nq; q++ {
		if !useful(q) {
			continue
		}
		if _, ok := id[class[q]]; !ok {
			id[class[q]] = out.addState()
			classes = append(classes, q)
		}
	}
	for _, rep := range classes {
		src := id[class[rep]]
		if d.Final[rep] {
			out.Final[src] = true
		}
		for b, r := range d.Letters[rep] {
			if useful(r) {
				if out.Letters[src] == nil {
					out.Letters[src] = map[byte]int{}
				}
				out.Letters[src][b] = id[class[r]]
			}
		}
		for m, r := range d.Masks[rep] {
			if useful(r) {
				if out.Masks[src] == nil {
					out.Masks[src] = map[Mask]int{}
				}
				out.Masks[src][m] = id[class[r]]
			}
		}
	}
	out.Start = id[class[d.Start]]
	return out
}

func numClasses(class []int, useful func(int) bool, nq int) int {
	seen := map[int]bool{}
	for q := 0; q < nq; q++ {
		if useful(q) {
			seen[class[q]] = true
		}
	}
	return len(seen)
}
