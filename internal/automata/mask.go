package automata

import (
	"fmt"
	"strings"

	"docspanner/internal/refwords"
	"docspanner/internal/spans"
)

// MaxVars is the maximum number of variables per spanner: marker sets are
// represented as 64-bit masks with two bits per variable.
const MaxVars = 32

// Mask is a set of markers over a fixed, canonically ordered variable set:
// bit 2i is the open marker of the i-th variable, bit 2i+1 its close
// marker. Masks are the "sets of markers" of extended vset-automata
// (Section 2.2, Option 2 of the survey).
type Mask uint64

// MaskIndex resolves markers to bit positions for one variable set.
type MaskIndex struct {
	vars spans.VarSet
}

// NewMaskIndex builds the marker-bit assignment for vars. It panics if
// there are more than MaxVars variables.
func NewMaskIndex(vars spans.VarSet) MaskIndex {
	if len(vars) > MaxVars {
		panic(fmt.Sprintf("automata: %d variables exceed the maximum of %d", len(vars), MaxVars))
	}
	return MaskIndex{vars: vars}
}

// Vars returns the underlying canonical variable set.
func (ix MaskIndex) Vars() spans.VarSet { return ix.vars }

// Bit returns the bit index of marker m. It panics on unknown variables.
func (ix MaskIndex) Bit(m Marker) uint {
	i := ix.vars.Index(m.Var)
	if i < 0 {
		panic(fmt.Sprintf("automata: marker %v for unknown variable", m))
	}
	b := uint(2 * i)
	if m.Close {
		b++
	}
	return b
}

// MaskOf returns the mask containing exactly the given markers.
func (ix MaskIndex) MaskOf(ms ...Marker) Mask {
	var out Mask
	for _, m := range ms {
		out |= 1 << ix.Bit(m)
	}
	return out
}

// Markers expands a mask back into its sorted marker set.
func (ix MaskIndex) Markers(m Mask) refwords.MarkerSet {
	var out refwords.MarkerSet
	for i, v := range ix.vars {
		if m&(1<<uint(2*i)) != 0 {
			out = append(out, Marker{Var: v})
		}
		if m&(1<<uint(2*i+1)) != 0 {
			out = append(out, Marker{Var: v, Close: true})
		}
	}
	refwords.SortMarkers(out)
	return out
}

// OpenBits returns the mask holding the open-marker bit of every
// variable in vars, with ok=false when some variable is not in the
// index (no tuple of this index can assign it). In a valid ref-word a
// variable opens iff it closes, so accumulating fired masks and testing
// them against OpenBits decides totality without building the tuple —
// the counting walks rely on this.
func (ix MaskIndex) OpenBits(vars spans.VarSet) (Mask, bool) {
	var out Mask
	for _, v := range vars {
		i := ix.vars.Index(v)
		if i < 0 {
			return 0, false
		}
		out |= 1 << uint(2*i)
	}
	return out, true
}

// Project keeps only the marker bits of variables in keep.
func (ix MaskIndex) Project(m Mask, keep spans.VarSet) Mask {
	var out Mask
	for i, v := range ix.vars {
		if keep.Contains(v) {
			out |= m & (3 << uint(2*i))
		}
	}
	return out
}

// Translate converts a mask expressed in this index into one expressed in
// other; variables missing from other must not occur in m.
func (ix MaskIndex) Translate(m Mask, other MaskIndex) Mask {
	var out Mask
	for i, v := range ix.vars {
		bits := (m >> uint(2*i)) & 3
		if bits == 0 {
			continue
		}
		j := other.vars.Index(v)
		if j < 0 {
			panic(fmt.Sprintf("automata: cannot translate marker of %s", v))
		}
		out |= bits << uint(2*j)
	}
	return out
}

// String renders the mask as {x▷, ◁y} using the index's variables.
func (ix MaskIndex) String(m Mask) string {
	ms := ix.Markers(m)
	parts := make([]string, len(ms))
	for i, mk := range ms {
		parts[i] = mk.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}
