package automata

import (
	"sort"
	"testing"

	"docspanner/internal/spans"
)

func TestCompiledDEVAMatchesMaps(t *testing.T) {
	d := Determinize(exampleSpanner())
	c := d.Compiled()
	if c.NQ != d.NumStates() || c.Start != d.Start {
		t.Fatalf("compiled shape: NQ=%d Start=%d", c.NQ, c.Start)
	}
	for q := 0; q < c.NQ; q++ {
		for b := 0; b < 256; b++ {
			if got, want := int(c.Step(q, byte(b))), d.Step(q, byte(b)); got != want {
				t.Fatalf("Step(%d, %q) = %d, want %d", q, byte(b), got, want)
			}
		}
		if len(c.MaskEdges[q]) != len(d.Masks[q]) {
			t.Fatalf("state %d: %d mask edges, want %d", q, len(c.MaskEdges[q]), len(d.Masks[q]))
		}
		if !sort.SliceIsSorted(c.MaskEdges[q], func(i, j int) bool {
			return c.MaskEdges[q][i].Mask < c.MaskEdges[q][j].Mask
		}) {
			t.Fatalf("state %d: mask edges not sorted", q)
		}
		for _, me := range c.MaskEdges[q] {
			if int(me.To) != d.Masks[q][me.Mask] {
				t.Fatalf("state %d mask %d: to %d, want %d", q, me.Mask, me.To, d.Masks[q][me.Mask])
			}
		}
	}
	for _, b := range c.Letters {
		row := c.StepsFor(b)
		for q := 0; q < c.NQ; q++ {
			if int(row[q]) != d.Step(q, b) {
				t.Fatalf("StepsFor(%q)[%d] = %d, want %d", b, q, row[q], d.Step(q, b))
			}
		}
	}
	if c.StepsFor('!') != nil {
		t.Error("StepsFor on an unread byte should be nil")
	}
	if d.Compiled() != c {
		t.Error("Compiled is not hash-consed")
	}
}

func TestCompiledNFAMatrices(t *testing.T) {
	// (ab)* with an ε-shortcut, so the closure matters.
	n := NewNFA(spans.NewVarSet())
	s1 := n.AddState()
	n.AddLetter(n.Start, 'a', s1)
	n.AddLetter(s1, 'b', n.Start)
	n.SetFinal(n.Start)
	c, err := n.CompiledMatrices()
	if err != nil {
		t.Fatal(err)
	}
	if !c.EmptyAccept {
		t.Error("(ab)* accepts the empty word")
	}
	// Check L_a·L_b reaches the final state from the start, L_a·L_a none.
	ab := c.LetterMatrix('a').Mul(c.LetterMatrix('b'))
	if !ab.Get(n.Start, n.Start) {
		t.Error("ab should loop back to start")
	}
	aa := c.LetterMatrix('a').Mul(c.LetterMatrix('a'))
	for q := 0; q < c.NQ; q++ {
		if aa.Get(n.Start, q) {
			t.Errorf("aa should be dead, reaches %d", q)
		}
	}
	if c.LetterMatrix('z') != c.LetterMatrix('q') {
		t.Error("unknown letters should share the zero matrix")
	}
	if c2, _ := n.CompiledMatrices(); c2 != c {
		t.Error("CompiledMatrices is not hash-consed")
	}
}

func compileAllocs(letters int) float64 {
	n := NewNFA(spans.NewVarSet())
	s1 := n.AddState()
	for i := 0; i < letters; i++ {
		n.AddLetter(n.Start, byte('a'+i), s1)
		n.AddLetter(s1, byte('a'+i), n.Start)
	}
	n.SetFinal(n.Start)
	return testing.AllocsPerRun(10, func() {
		if _, err := CompileNFA(n); err != nil {
			panic(err)
		}
	})
}

// CompileNFA must not allocate per alphabet letter: the scratch pair is
// shared and the retained letter matrices come from one arena, so going
// from 2 to 20 letters adds no allocations beyond noise.
func TestCompileNFAAllocsPerLetter(t *testing.T) {
	small, large := compileAllocs(2), compileAllocs(20)
	if large-small > 4 {
		t.Errorf("CompileNFA allocates per letter: %.1f allocs at 2 letters, %.1f at 20", small, large)
	}
}

func TestCompileNFARejectsSpanners(t *testing.T) {
	n := exampleSpanner()
	if _, err := CompileNFA(n); err == nil {
		t.Error("CompileNFA should reject marker automata")
	}
	r := NewNFA(spans.NewVarSet("x"))
	s1 := r.AddState()
	r.AddRef(r.Start, "x", s1)
	r.SetFinal(s1)
	if _, err := CompileNFA(r); err == nil {
		t.Error("CompileNFA should reject reference automata")
	}
}
