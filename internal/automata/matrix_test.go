package automata

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(n int, rng *rand.Rand, density float64) *BoolMatrix {
	m := NewBoolMatrix(n)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if rng.Float64() < density {
				m.Set(p, q)
			}
		}
	}
	return m
}

func naiveMul(a, b *BoolMatrix) *BoolMatrix {
	out := NewBoolMatrix(a.N)
	for p := 0; p < a.N; p++ {
		for r := 0; r < a.N; r++ {
			if !a.Get(p, r) {
				continue
			}
			for q := 0; q < a.N; q++ {
				if b.Get(r, q) {
					out.Set(p, q)
				}
			}
		}
	}
	return out
}

func TestBoolMatrixSetGet(t *testing.T) {
	m := NewBoolMatrix(70) // spans multiple words per row
	m.Set(0, 69)
	m.Set(69, 0)
	if !m.Get(0, 69) || !m.Get(69, 0) || m.Get(0, 0) {
		t.Error("Set/Get wrong")
	}
}

func TestBoolMatrixMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Word-boundary widths (0, 1, 63, 64, 65) and general sizes.
	for _, n := range []int{0, 1, 3, 17, 63, 64, 65, 100} {
		a := randomMatrix(n, rng, 0.2)
		b := randomMatrix(n, rng, 0.2)
		want := naiveMul(a, b)
		if !a.Mul(b).Equal(want) {
			t.Errorf("Mul mismatch at n=%d", n)
		}
		if !NewBoolMatrix(n).MulInto(a, b).Equal(want) {
			t.Errorf("MulInto mismatch at n=%d", n)
		}
		if !a.MulTransposed(b.Transpose()).Equal(want) {
			t.Errorf("MulTransposed mismatch at n=%d", n)
		}
	}
}

func TestBoolMatrixIdentityIdempotent(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65} {
		id := IdentityMatrix(n)
		if !id.Mul(id).Equal(id) {
			t.Errorf("I·I ≠ I at n=%d", n)
		}
	}
}

func TestBoolMatrixTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 63, 64, 65, 90} {
		m := randomMatrix(n, rng, 0.25)
		if !m.Transpose().Transpose().Equal(m) {
			t.Errorf("(mᵀ)ᵀ ≠ m at n=%d", n)
		}
	}
}

func TestApplyIntoMatchesAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 63, 64, 65, 100} {
		m := randomMatrix(n, rng, 0.2)
		v := NewBitVec(n)
		for q := 0; q < n; q++ {
			if rng.Intn(3) == 0 {
				BitSet(v, q)
			}
		}
		scratch := make([]uint64, m.Words())
		left := m.ApplyLeft(v)
		if got := m.ApplyLeftInto(scratch, v); !vecEqual(got, left) {
			t.Errorf("ApplyLeftInto mismatch at n=%d", n)
		}
		right := m.ApplyRight(v)
		if got := m.ApplyRightInto(scratch, v); !vecEqual(got, right) {
			t.Errorf("ApplyRightInto mismatch at n=%d", n)
		}
		// The transpose identity the enumeration walk relies on:
		// mᵀ applied on the left is m applied on the right.
		if got := m.Transpose().ApplyLeft(v); !vecEqual(got, right) {
			t.Errorf("mᵀ.ApplyLeft ≠ m.ApplyRight at n=%d", n)
		}
	}
}

func vecEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBoolMatrixIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(33, rng, 0.3)
	id := IdentityMatrix(33)
	if !m.Mul(id).Equal(m) || !id.Mul(m).Equal(m) {
		t.Error("identity law fails")
	}
}

func TestBoolMatrixAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		a := randomMatrix(n, rng, 0.15)
		b := randomMatrix(n, rng, 0.15)
		c := randomMatrix(n, rng, 0.15)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestApplyLeftRight(t *testing.T) {
	m := NewBoolMatrix(5)
	m.Set(0, 2)
	m.Set(2, 4)
	m.Set(3, 1)

	v := NewBitVec(5)
	BitSet(v, 0)
	BitSet(v, 3)
	left := m.ApplyLeft(v) // rows 0 and 3 → {2, 1}
	if !BitGet(left, 2) || !BitGet(left, 1) || BitGet(left, 4) {
		t.Errorf("ApplyLeft = %b", left)
	}

	acc := NewBitVec(5)
	BitSet(acc, 4)
	right := m.ApplyRight(acc) // who reaches 4? state 2.
	if !BitGet(right, 2) || BitGet(right, 0) || BitGet(right, 3) {
		t.Errorf("ApplyRight = %b", right)
	}
}
