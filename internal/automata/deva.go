package automata

import (
	"sort"
	"strings"
	"sync"
)

// DEVA is a deterministic extended vset-automaton (Florenzano et al.,
// ACM TODS 2020; Section 2.2 Option 2 and Section 2.5 of the survey): a
// deterministic automaton over the alphabet Σ ∪ (2^Markers ∖ {∅}). A run
// on a document D = a1...an proceeds position by position: at each boundary
// it may take at most one mask transition (reading the non-empty set of
// markers at that boundary) and then reads the next letter; after the last
// letter it may take one final mask transition before accepting.
//
// Every extended subword-marked word has a unique factorization of this
// shape, so a DEVA assigns at most one run per (document, tuple) pair —
// the property that makes duplicate-free enumeration possible.
type DEVA struct {
	Index   MaskIndex
	Start   int
	Final   []bool
	Letters []map[byte]int
	Masks   []map[Mask]int
}

// NumStates returns the number of states.
func (d *DEVA) NumStates() int { return len(d.Final) }

// addState appends a fresh state.
func (d *DEVA) addState() int {
	id := len(d.Final)
	d.Final = append(d.Final, false)
	d.Letters = append(d.Letters, nil)
	d.Masks = append(d.Masks, nil)
	return id
}

// Step returns the letter successor of q on b, or -1.
func (d *DEVA) Step(q int, b byte) int {
	if t, ok := d.Letters[q][b]; ok {
		return t
	}
	return -1
}

// StepMask returns the mask successor of q on m, or -1.
func (d *DEVA) StepMask(q int, m Mask) int {
	if t, ok := d.Masks[q][m]; ok {
		return t
	}
	return -1
}

// Determinize converts a (nondeterministic, ε/marker-transition) NFA into
// an equivalent DEVA via subset construction. Mask transitions of the DEVA
// correspond to boundary paths of the NFA that read exactly the markers of
// the mask (in any order, interleaved with ε). The construction is
// exponential in the NFA size in the worst case — query complexity only;
// it is independent of any document.
func Determinize(n *NFA) *DEVA {
	if n.HasRefs() {
		panic("automata: Determinize on an automaton with reference transitions; dereference first (package refl)")
	}
	ix := NewMaskIndex(n.Vars)
	d := &DEVA{Index: ix}

	type key = string
	enc := func(set []int) key {
		var sb strings.Builder
		for _, q := range set {
			sb.WriteByte(byte(q))
			sb.WriteByte(byte(q >> 8))
			sb.WriteByte(byte(q >> 16))
		}
		return sb.String()
	}

	ids := make(map[key]int)
	var sets [][]int

	intern := func(set []int) int {
		k := enc(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := d.addState()
		ids[k] = id
		sets = append(sets, set)
		for _, q := range set {
			if n.Final[q] {
				d.Final[id] = true
				break
			}
		}
		return id
	}

	start := n.EpsClosure([]int{n.Start})
	intern(start)
	d.Start = 0

	for work := 0; work < len(sets); work++ {
		set := sets[work]

		// Letter transitions.
		byLetter := make(map[byte]map[int]bool)
		for _, q := range set {
			for b, rs := range n.Letters[q] {
				tgt := byLetter[b]
				if tgt == nil {
					tgt = make(map[int]bool)
					byLetter[b] = tgt
				}
				for _, r := range rs {
					tgt[r] = true
				}
			}
		}
		for b, tgt := range byLetter {
			next := n.EpsClosure(sortedKeys(tgt))
			id := intern(next)
			if d.Letters[work] == nil {
				d.Letters[work] = make(map[byte]int)
			}
			d.Letters[work][b] = id
		}

		// Mask transitions: explore boundary paths of markers and ε.
		type cfg struct {
			q    int
			mask Mask
		}
		reach := make(map[cfg]bool)
		var stack []cfg
		for _, q := range set {
			c := cfg{q, 0}
			reach[c] = true
			stack = append(stack, c)
		}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, r := range n.Eps[c.q] {
				nc := cfg{r, c.mask}
				if !reach[nc] {
					reach[nc] = true
					stack = append(stack, nc)
				}
			}
			for m, rs := range n.Markers[c.q] {
				bit := Mask(1) << ix.Bit(m)
				if c.mask&bit != 0 {
					// Re-reading a marker within one boundary would yield
					// an invalid subword-marked word; skip.
					continue
				}
				for _, r := range rs {
					nc := cfg{r, c.mask | bit}
					if !reach[nc] {
						reach[nc] = true
						stack = append(stack, nc)
					}
				}
			}
		}
		byMask := make(map[Mask]map[int]bool)
		for c := range reach {
			if c.mask == 0 {
				continue
			}
			tgt := byMask[c.mask]
			if tgt == nil {
				tgt = make(map[int]bool)
				byMask[c.mask] = tgt
			}
			tgt[c.q] = true
		}
		for m, tgt := range byMask {
			next := sortedKeys(tgt) // already ε-closed: closure explored above
			id := intern(next)
			if d.Masks[work] == nil {
				d.Masks[work] = make(map[Mask]int)
			}
			d.Masks[work][m] = id
		}
	}
	return d
}

// devaCache memoizes Determinize per NFA identity. NFAs are immutable once
// built (every construction in this package returns a fresh automaton and
// nothing mutates a published one), so the pointer is a sound cache key —
// the same idiom as the compiled-kernel and slpmatch caches. Each entry
// holds its own sync.Once so concurrent first calls determinize exactly
// once and later callers never block behind an unrelated automaton.
var devaCache sync.Map // *NFA -> *devaHolder

type devaHolder struct {
	once sync.Once
	d    *DEVA
}

// DeterminizeCached is Determinize with the result hash-consed per NFA
// pointer. The facade's lazy spanner determinization, the query planner's
// scan backends, and the compressed-evaluation indexes all go through this
// entry point, so a given automaton is determinized at most once per
// process no matter which evaluation path touches it first.
func DeterminizeCached(n *NFA) *DEVA {
	v, _ := devaCache.LoadOrStore(n, &devaHolder{})
	h := v.(*devaHolder)
	h.once.Do(func() { h.d = Determinize(n) })
	return h.d
}

// ResetDEVACache drops the memoized determinizations (tests and
// long-running processes that churn through many distinct automata).
func ResetDEVACache() {
	devaCache.Range(func(k, _ any) bool {
		devaCache.Delete(k)
		return true
	})
}

// AcceptsExtended runs the DEVA on an extended word: doc plus a mask for
// every boundary 0..len(doc) (masksAt may be nil meaning all-empty;
// otherwise it must have length len(doc)+1).
func (d *DEVA) AcceptsExtended(doc []byte, masksAt []Mask) bool {
	q := d.Start
	for i := 0; i <= len(doc); i++ {
		if masksAt != nil && masksAt[i] != 0 {
			q = d.StepMask(q, masksAt[i])
			if q < 0 {
				return false
			}
		}
		if i < len(doc) {
			q = d.Step(q, doc[i])
			if q < 0 {
				return false
			}
		}
	}
	return d.Final[q]
}

// AlphabetAndMasks collects the letters and masks occurring on transitions.
func (d *DEVA) AlphabetAndMasks() ([]byte, []Mask) {
	lset := make(map[byte]bool)
	mset := make(map[Mask]bool)
	for q := range d.Final {
		for b := range d.Letters[q] {
			lset[b] = true
		}
		for m := range d.Masks[q] {
			mset[m] = true
		}
	}
	letters := make([]byte, 0, len(lset))
	for b := range lset {
		letters = append(letters, b)
	}
	sort.Slice(letters, func(i, j int) bool { return letters[i] < letters[j] })
	masks := make([]Mask, 0, len(mset))
	for m := range mset {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
	return letters, masks
}

// equivResult reports the outcome of a containment/equivalence product
// search.
type equivResult struct {
	leftOnly  bool // a word accepted by d1 but not d2 exists
	rightOnly bool
}

// compare explores the synchronous product of two DEVAs over the union of
// their alphabets, restricted to well-formed extended words (no two
// consecutive mask symbols — consecutive markers always form a single
// set, Section 2.2). Dead states are represented by -1.
func compare(d1, d2 *DEVA) equivResult {
	l1, m1 := d1.AlphabetAndMasks()
	l2, m2 := d2.AlphabetAndMasks()
	letters := unionBytes(l1, l2)
	masks := unionMasks(m1, m2)

	type pair struct {
		a, b    int
		wasMask bool
	}
	start := pair{d1.Start, d2.Start, false}
	seen := map[pair]bool{start: true}
	stack := []pair{start}
	var res equivResult
	final := func(d *DEVA, q int) bool { return q >= 0 && d.Final[q] }
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f1, f2 := final(d1, p.a), final(d2, p.b)
		if f1 && !f2 {
			res.leftOnly = true
		}
		if f2 && !f1 {
			res.rightOnly = true
		}
		if res.leftOnly && res.rightOnly {
			return res
		}
		step := func(a, b int, wasMask bool) {
			if a < 0 && b < 0 {
				return
			}
			np := pair{a, b, wasMask}
			if !seen[np] {
				seen[np] = true
				stack = append(stack, np)
			}
		}
		for _, c := range letters {
			a, b := -1, -1
			if p.a >= 0 {
				a = d1.Step(p.a, c)
			}
			if p.b >= 0 {
				b = d2.Step(p.b, c)
			}
			step(a, b, false)
		}
		if !p.wasMask {
			for _, m := range masks {
				a, b := -1, -1
				if p.a >= 0 {
					a = d1.StepMask(p.a, m)
				}
				if p.b >= 0 {
					b = d2.StepMask(p.b, m)
				}
				step(a, b, true)
			}
		}
	}
	return res
}

// Contains reports whether L(d1) ⊆ L(d2). Both automata must use the same
// variable ordering (masks are compared bit-for-bit).
func Contains(d1, d2 *DEVA) bool {
	return !compare(d1, d2).leftOnly
}

// Equivalent reports whether L(d1) = L(d2).
func Equivalent(d1, d2 *DEVA) bool {
	r := compare(d1, d2)
	return !r.leftOnly && !r.rightOnly
}

func unionBytes(a, b []byte) []byte {
	seen := make(map[byte]bool)
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		seen[x] = true
	}
	out := make([]byte, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func unionMasks(a, b []Mask) []Mask {
	seen := make(map[Mask]bool)
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		seen[x] = true
	}
	out := make([]Mask, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Difference returns a DEVA accepting L(d1) ∖ L(d2) restricted to
// well-formed extended words — as spanners, exactly the tuple-wise
// difference ⟦d1⟧(D) ∖ ⟦d2⟧(D) for every document, because well-formed
// extended words are in bijection with (document, tuple) pairs. This
// realizes the classical closure of regular spanners under difference.
// Both automata must share the variable ordering (same MaskIndex layout).
func Difference(d1, d2 *DEVA) *DEVA {
	l1, m1 := d1.AlphabetAndMasks()
	l2, m2 := d2.AlphabetAndMasks()
	letters := unionBytes(l1, l2)
	masks := unionMasks(m1, m2)

	out := &DEVA{Index: d1.Index}
	type pair struct{ a, b int } // b == -1 encodes the dead state of d2
	ids := map[pair]int{}
	var order []pair
	intern := func(p pair) int {
		if id, ok := ids[p]; ok {
			return id
		}
		id := out.addState()
		ids[p] = id
		order = append(order, p)
		if d1.Final[p.a] && (p.b < 0 || !d2.Final[p.b]) {
			out.Final[id] = true
		}
		return id
	}
	intern(pair{d1.Start, d2.Start})
	for i := 0; i < len(order); i++ {
		p := order[i]
		src := ids[p]
		for _, c := range letters {
			a := d1.Step(p.a, c)
			if a < 0 {
				continue // not in L(d1): irrelevant for the difference
			}
			b := -1
			if p.b >= 0 {
				b = d2.Step(p.b, c)
			}
			if out.Letters[src] == nil {
				out.Letters[src] = map[byte]int{}
			}
			out.Letters[src][c] = intern(pair{a, b})
		}
		for _, m := range masks {
			a := d1.StepMask(p.a, m)
			if a < 0 {
				continue
			}
			b := -1
			if p.b >= 0 {
				b = d2.StepMask(p.b, m)
			}
			if out.Masks[src] == nil {
				out.Masks[src] = map[Mask]int{}
			}
			out.Masks[src][m] = intern(pair{a, b})
		}
	}
	return out
}
