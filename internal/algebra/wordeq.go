package algebra

import (
	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// This file constructs the word-combinatorial core spanners discussed in
// Section 2.4 of the survey (after Freydenberger and Holldack): S_com,
// which extracts the pairs of factors that commute (u·v = v·u, the word
// equation xy = yx), and S_cyc, which extracts pairs of factors that are
// cyclic shifts of each other (the word equation xz = zy). Both are proper
// core spanners: S_com even requires string-equality selections over
// overlapping spans, the feature that separates core spanners from
// refl-spanners (Section 3).
//
// Scope note: the spanners constructed here extract the pairs whose two
// spans are disjoint as intervals (one factor before the other). Covering
// every relative position of the two spans only multiplies the number of
// marker interleavings in the union without exercising anything new.

// fragment helpers ---------------------------------------------------------

type frag struct {
	n        *automata.NFA
	alphabet []byte
}

func (f *frag) anyLoop(q int) {
	for _, b := range f.alphabet {
		f.n.AddLetter(q, b, q)
	}
}

// anyStar adds a fresh state reachable by ε that loops on every letter.
func (f *frag) anyStar(from int) int {
	q := f.n.AddState()
	f.n.AddEps(from, q)
	f.anyLoop(q)
	return q
}

// anyPlus adds states enforcing at least one letter, then loops.
func (f *frag) anyPlus(from int) int {
	mid := f.n.AddState()
	for _, b := range f.alphabet {
		f.n.AddLetter(from, b, mid)
	}
	f.anyLoop(mid)
	return mid
}

func (f *frag) markers(from int, ms ...automata.Marker) int {
	cur := from
	for _, m := range ms {
		next := f.n.AddState()
		f.n.AddMarker(cur, m, next)
		cur = next
	}
	return cur
}

func open(v spans.Var) automata.Marker  { return automata.Marker{Var: v} }
func close(v spans.Var) automata.Marker { return automata.Marker{Var: v, Close: true} }

// Commuting returns the core spanner S_com over variables {x, y}: on a
// document D it extracts exactly the pairs of disjoint spans whose factors
// u and v satisfy u·v = v·u. The construction implements the periodicity
// characterization: nonempty u and v commute iff there is a word p such
// that both have period |p|, start with p, and end with p (then both are
// powers of p's primitive root); the period test |u|-prefix = |u|-suffix
// compares two *overlapping* spans of D via string-equality selection.
// Empty factors commute with everything and are handled by extra branches.
func Commuting(x, y spans.Var, alphabet []byte) Expr {
	helpers := func(v spans.Var) (p, s, z1, z2 spans.Var) {
		return v + "·pfx", v + "·sfx", v + "·per1", v + "·per2"
	}
	px, sx, z1x, z2x := helpers(x)
	py, sy, z1y, z2y := helpers(y)

	var branches []Expr
	// Main branch: both factors non-empty, in both relative orders.
	for _, order := range [][2]spans.Var{{x, y}, {y, x}} {
		first, second := order[0], order[1]
		fp, fs, fz1, fz2 := helpers(first)
		sp, ss, sz1, sz2 := helpers(second)
		for _, caseFirst := range []bool{true, false} {
			for _, caseSecond := range []bool{true, false} {
				n := automata.NewNFA(spans.NewVarSet(
					x, y, px, sx, z1x, z2x, py, sy, z1y, z2y))
				f := &frag{n: n, alphabet: alphabet}
				cur := f.anyStar(n.Start)
				cur = periodFragment(f, cur, first, fp, fs, fz1, fz2, caseFirst)
				cur = f.anyStar(cur)
				cur = periodFragment(f, cur, second, sp, ss, sz1, sz2, caseSecond)
				cur = f.anyStar(cur)
				n.SetFinal(cur)
				branches = append(branches, Expr(Prim{A: n}))
			}
		}
	}
	main := branches[0]
	for _, b := range branches[1:] {
		main = Union{L: main, R: b}
	}
	selected := SelectEq{
		Sub: SelectEq{
			Sub: SelectEq{Sub: main, Z: spans.NewVarSet(px, sx, py, sy)},
			Z:   spans.NewVarSet(z1x, z2x),
		},
		Z: spans.NewVarSet(z1y, z2y),
	}

	// Empty branches: an empty factor commutes with any factor.
	emptyX := emptyPairBranch(x, y, alphabet)
	emptyY := emptyPairBranch(y, x, alphabet)

	return Project{
		Sub:  Union{L: Union{L: selected, R: emptyX}, R: emptyY},
		Keep: spans.NewVarSet(x, y),
	}
}

// periodFragment appends the marker chain binding, for one factor u
// starting at the current position: u to v, its prefix/suffix of the
// (nondeterministically chosen) period length to p and s, and the two
// overlapping period-test spans to z1 and z2. caseSmall selects the
// marker order for 2·d ≤ |u| (prefix closes before the period suffix
// opens); the other order covers |u| < 2·d.
func periodFragment(f *frag, from int, v, p, s, z1, z2 spans.Var, caseSmall bool) int {
	if caseSmall {
		// i: v▷ z1▷ p▷ · d letters · ◁p z2▷ · gap letters · ◁z1 s▷ ·
		// d letters · ◁s ◁z2 ◁v
		cur := f.markers(from, open(v), open(z1), open(p))
		cur = f.anyPlus(cur)
		cur = f.markers(cur, close(p), open(z2))
		cur = f.anyStar(cur)
		cur = f.markers(cur, close(z1), open(s))
		cur = f.anyPlus(cur)
		return f.markers(cur, close(s), close(z2), close(v))
	}
	// i: v▷ z1▷ p▷ · g1 letters · ◁z1 s▷ · ≥1 letters · ◁p z2▷ ·
	// g1 letters · ◁s ◁z2 ◁v
	cur := f.markers(from, open(v), open(z1), open(p))
	cur = f.anyStar(cur)
	cur = f.markers(cur, close(z1), open(s))
	cur = f.anyPlus(cur)
	cur = f.markers(cur, close(p), open(z2))
	cur = f.anyStar(cur)
	return f.markers(cur, close(s), close(z2), close(v))
}

// emptyPairBranch builds the regular spanner binding e to an empty span
// and other to an arbitrary factor, with the two spans disjoint (both
// relative orders included).
func emptyPairBranch(e, other spans.Var, alphabet []byte) Expr {
	mk := func(eFirst bool) *automata.NFA {
		n := automata.NewNFA(spans.NewVarSet(e, other))
		f := &frag{n: n, alphabet: alphabet}
		cur := f.anyStar(n.Start)
		if eFirst {
			cur = f.markers(cur, open(e), close(e))
			cur = f.anyStar(cur)
			cur = f.markers(cur, open(other))
			cur = f.anyStar(cur)
			cur = f.markers(cur, close(other))
		} else {
			cur = f.markers(cur, open(other))
			cur = f.anyStar(cur)
			cur = f.markers(cur, close(other))
			cur = f.anyStar(cur)
			cur = f.markers(cur, open(e), close(e))
		}
		cur = f.anyStar(cur)
		n.SetFinal(cur)
		return n
	}
	return Union{L: Prim{A: mk(true)}, R: Prim{A: mk(false)}}
}

// CyclicShift returns the core spanner S_cyc over variables {x, y}: it
// extracts exactly the pairs of disjoint spans whose factors u and v are
// cyclic shifts of each other (u = w1·w2 and v = w2·w1). The witness
// split is extracted by four helper variables x1 x2 y1 y2 with the two
// string-equality selections ς={x1,y2} and ς={x2,y1}; the visible columns
// are obtained with the fusion operator of Section 3.2.
func CyclicShift(x, y spans.Var, alphabet []byte) Expr {
	x1, x2 := x+"·1", x+"·2"
	y1, y2 := y+"·1", y+"·2"
	mk := func(xFirst bool) *automata.NFA {
		n := automata.NewNFA(spans.NewVarSet(x1, x2, y1, y2))
		f := &frag{n: n, alphabet: alphabet}
		bindSplit := func(cur int, a, b spans.Var) int {
			cur = f.markers(cur, open(a))
			cur = f.anyStar(cur)
			cur = f.markers(cur, close(a), open(b))
			cur = f.anyStar(cur)
			return f.markers(cur, close(b))
		}
		cur := f.anyStar(n.Start)
		if xFirst {
			cur = bindSplit(cur, x1, x2)
			cur = f.anyStar(cur)
			cur = bindSplit(cur, y1, y2)
		} else {
			cur = bindSplit(cur, y1, y2)
			cur = f.anyStar(cur)
			cur = bindSplit(cur, x1, x2)
		}
		cur = f.anyStar(cur)
		n.SetFinal(cur)
		return n
	}
	body := SelectEq{
		Sub: SelectEq{
			Sub: Union{L: Prim{A: mk(true)}, R: Prim{A: mk(false)}},
			Z:   spans.NewVarSet(x1, y2),
		},
		Z: spans.NewVarSet(x2, y1),
	}
	return Fuse{
		Sub:    Fuse{Sub: body, Lambda: spans.NewVarSet(x1, x2), Target: x},
		Lambda: spans.NewVarSet(y1, y2),
		Target: y,
	}
}
