package algebra

import (
	"fmt"
	"strings"

	"docspanner/internal/automata"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// PlanKind discriminates the nodes of the logical plan IR.
type PlanKind uint8

const (
	// PScan evaluates a single vset-automaton (a regular spanner).
	PScan PlanKind = iota
	// PExtScan evaluates an external spanner (e.g. a refl-spanner) that
	// is opaque to the algebraic rewrites.
	PExtScan
	// PUnion, PJoin, PProject, PSelect, PFuse mirror the algebra
	// operators ∪, ⋈, π, ς=, ⨄.
	PUnion
	PJoin
	PProject
	PSelect
	PFuse
	// PEmpty is a provably empty subplan (dead-subtree pruning).
	PEmpty
)

// String names the node kind as it appears in EXPLAIN output.
func (k PlanKind) String() string {
	switch k {
	case PScan:
		return "scan"
	case PExtScan:
		return "ext-scan"
	case PUnion:
		return "union"
	case PJoin:
		return "join"
	case PProject:
		return "project"
	case PSelect:
		return "select-eq"
	case PFuse:
		return "fuse"
	case PEmpty:
		return "empty"
	}
	return fmt.Sprintf("plankind(%d)", uint8(k))
}

// ExternalSpanner is a spanner the planner treats as a black box: it is
// scanned as a whole, never rewritten. *refl.Spanner satisfies it.
type ExternalSpanner interface {
	Vars() spans.VarSet
	Eval(doc []byte, functional bool) *spans.Relation
	Enumerate(doc []byte, functional bool, f func(spans.Tuple) bool)
}

// Plan is a node of the logical query plan derived from an Expr. Unlike
// Expr it is mutable during planning: rewrite passes edit the tree in
// place and record what they did in Rewrites, so EXPLAIN can show
// per-node provenance. Once planning finishes, the tree is frozen and
// shared (physical evaluation never mutates it).
type Plan struct {
	Kind     PlanKind
	Children []*Plan

	// PScan payload. Src optionally carries the regex AST of the scanned
	// automaton (used by the refl-rewrite pass; nil for fused scans).
	Auto *automata.NFA
	Src  regex.Node

	// PExtScan payload.
	Ext ExternalSpanner

	// Operator payloads: Keep for PProject, Z for PSelect, Lambda/Target
	// for PFuse, Schema for PEmpty (the pruned subtree's variables, kept
	// so the plan's schema is unchanged by pruning).
	Keep   spans.VarSet
	Z      spans.VarSet
	Lambda spans.VarSet
	Target spans.Var
	Schema spans.VarSet

	// Path locates the node in the ORIGINAL expression tree using the
	// spanlint convention ("$", "$.L", "$.R", "$.Sub"), so lint
	// diagnostics can be mapped onto plan nodes. Nodes introduced by
	// rewrites inherit the path of the node they replaced.
	Path string

	// Rewrites records, in order, the rewrite steps that produced or
	// altered this node.
	Rewrites []string
}

// FromExpr derives the initial (unoptimized) logical plan of an
// expression. The plan mirrors the expression tree one-to-one; Path
// follows the spanlint position convention.
func FromExpr(e Expr) *Plan {
	return fromExpr(e, "$")
}

func fromExpr(e Expr, path string) *Plan {
	switch m := e.(type) {
	case Prim:
		return &Plan{Kind: PScan, Auto: m.A, Src: m.Src, Path: path}
	case Union:
		return &Plan{Kind: PUnion, Children: []*Plan{fromExpr(m.L, path+".L"), fromExpr(m.R, path+".R")}, Path: path}
	case Join:
		return &Plan{Kind: PJoin, Children: []*Plan{fromExpr(m.L, path+".L"), fromExpr(m.R, path+".R")}, Path: path}
	case Project:
		return &Plan{Kind: PProject, Children: []*Plan{fromExpr(m.Sub, path+".Sub")}, Keep: m.Keep, Path: path}
	case SelectEq:
		return &Plan{Kind: PSelect, Children: []*Plan{fromExpr(m.Sub, path+".Sub")}, Z: m.Z, Path: path}
	case Fuse:
		return &Plan{Kind: PFuse, Children: []*Plan{fromExpr(m.Sub, path+".Sub")}, Lambda: m.Lambda, Target: m.Target, Path: path}
	}
	panic(fmt.Sprintf("algebra: FromExpr: unknown node %T", e))
}

// Vars returns the node's output schema.
func (p *Plan) Vars() spans.VarSet {
	switch p.Kind {
	case PScan:
		return p.Auto.Vars
	case PExtScan:
		return p.Ext.Vars()
	case PUnion, PJoin:
		var out spans.VarSet
		for _, c := range p.Children {
			out = out.Union(c.Vars())
		}
		return out
	case PProject:
		return p.Children[0].Vars().Intersect(p.Keep)
	case PSelect:
		return p.Children[0].Vars()
	case PFuse:
		return p.Children[0].Vars().Minus(p.Lambda).Union(spans.NewVarSet(p.Target))
	case PEmpty:
		return p.Schema
	}
	panic("algebra: Plan.Vars: unknown kind")
}

// Note appends a rewrite-provenance entry to the node.
func (p *Plan) Note(msg string) { p.Rewrites = append(p.Rewrites, msg) }

// Eval is the reference (materializing) evaluation of the plan — the
// same bottom-up relational semantics as Expr.Eval, used by the naive
// backend and by the rewrite-equivalence tests.
func (p *Plan) Eval(doc []byte, sem vset.Semantics) *spans.Relation {
	switch p.Kind {
	case PScan:
		return vset.Eval(p.Auto, doc, sem)
	case PExtScan:
		return p.Ext.Eval(doc, sem == vset.Functional)
	case PUnion:
		out := p.Children[0].Eval(doc, sem)
		for _, c := range p.Children[1:] {
			out = out.Union(c.Eval(doc, sem))
		}
		return out
	case PJoin:
		out := p.Children[0].Eval(doc, sem)
		for _, c := range p.Children[1:] {
			out = out.Join(c.Eval(doc, sem))
		}
		return out
	case PProject:
		return p.Children[0].Eval(doc, sem).Project(p.Keep)
	case PSelect:
		return p.Children[0].Eval(doc, sem).SelectEqual(doc, p.Z)
	case PFuse:
		return p.Children[0].Eval(doc, sem).Fuse(p.Lambda, p.Target)
	case PEmpty:
		return spans.NewRelation()
	}
	panic("algebra: Plan.Eval: unknown kind")
}

// String renders the plan as a one-line expression.
func (p *Plan) String() string {
	switch p.Kind {
	case PScan:
		return fmt.Sprintf("⟦M:%dq⟧%v", p.Auto.NumStates(), p.Auto.Vars)
	case PExtScan:
		return fmt.Sprintf("⟦ext⟧%v", p.Ext.Vars())
	case PUnion:
		return "(" + joinStrings(p.Children, " ∪ ") + ")"
	case PJoin:
		return "(" + joinStrings(p.Children, " ⋈ ") + ")"
	case PProject:
		return "π" + p.Keep.String() + "(" + p.Children[0].String() + ")"
	case PSelect:
		return "ς=" + p.Z.String() + "(" + p.Children[0].String() + ")"
	case PFuse:
		return fmt.Sprintf("⨄%v→%s(%s)", p.Lambda, p.Target, p.Children[0].String())
	case PEmpty:
		return "∅" + p.Schema.String()
	}
	return "?"
}

func joinStrings(ps []*Plan, sep string) string {
	parts := make([]string, len(ps))
	for i, c := range ps {
		parts[i] = c.String()
	}
	return strings.Join(parts, sep)
}

// Fingerprint returns a structural identity string for hash-consing
// plans. Automata and external spanners are identified by pointer —
// both are immutable once published, so pointer equality is sound (and
// is the same keying discipline as the compiled-kernel caches).
func (p *Plan) Fingerprint() string {
	var sb strings.Builder
	p.fingerprint(&sb)
	return sb.String()
}

func (p *Plan) fingerprint(sb *strings.Builder) {
	fmt.Fprintf(sb, "%d", p.Kind)
	switch p.Kind {
	case PScan:
		fmt.Fprintf(sb, "@%p", p.Auto)
	case PExtScan:
		fmt.Fprintf(sb, "@%p", p.Ext)
	case PProject:
		sb.WriteString(p.Keep.String())
	case PSelect:
		sb.WriteString(p.Z.String())
	case PFuse:
		sb.WriteString(p.Lambda.String())
		sb.WriteString(string(p.Target))
	case PEmpty:
		sb.WriteString(p.Schema.String())
	}
	sb.WriteByte('(')
	for _, c := range p.Children {
		c.fingerprint(sb)
		sb.WriteByte(',')
	}
	sb.WriteByte(')')
}
