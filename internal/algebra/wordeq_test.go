package algebra

import (
	"testing"

	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// bruteCommuting enumerates disjoint span pairs whose factors commute.
func bruteCommuting(doc []byte, x, y spans.Var) *spans.Relation {
	out := spans.NewRelation()
	n := len(doc)
	commute := func(u, v []byte) bool {
		return string(u)+string(v) == string(v)+string(u)
	}
	for b1 := 1; b1 <= n+1; b1++ {
		for e1 := b1; e1 <= n+1; e1++ {
			for b2 := 1; b2 <= n+1; b2++ {
				for e2 := b2; e2 <= n+1; e2++ {
					s1, s2 := spans.S(b1, e1), spans.S(b2, e2)
					if !(e1 <= b2 || e2 <= b1) {
						continue // only disjoint pairs are in scope
					}
					if commute(s1.Content(doc), s2.Content(doc)) {
						out.Add(spans.NewTuple(x, s1, y, s2))
					}
				}
			}
		}
	}
	return out
}

// bruteCyclic enumerates disjoint span pairs whose factors are cyclic
// shifts of each other.
func bruteCyclic(doc []byte, x, y spans.Var) *spans.Relation {
	out := spans.NewRelation()
	n := len(doc)
	cyc := func(u, v []byte) bool {
		if len(u) != len(v) {
			return false
		}
		for k := 0; k <= len(u); k++ {
			if string(u[k:])+string(u[:k]) == string(v) {
				return true
			}
		}
		return false
	}
	for b1 := 1; b1 <= n+1; b1++ {
		for e1 := b1; e1 <= n+1; e1++ {
			for b2 := 1; b2 <= n+1; b2++ {
				for e2 := b2; e2 <= n+1; e2++ {
					s1, s2 := spans.S(b1, e1), spans.S(b2, e2)
					if !(e1 <= b2 || e2 <= b1) {
						continue
					}
					if cyc(s1.Content(doc), s2.Content(doc)) {
						out.Add(spans.NewTuple(x, s1, y, s2))
					}
				}
			}
		}
	}
	return out
}

func TestCommutingSpanner(t *testing.T) {
	e := Commuting("x", "y", []byte("ab"))
	for _, doc := range []string{"", "a", "ab", "aa", "abab", "aabaa", "ababa"} {
		got := e.Eval([]byte(doc), vset.Functional)
		want := bruteCommuting([]byte(doc), "x", "y")
		if !got.Equal(want) {
			for _, tup := range want.Tuples() {
				if !got.Contains(tup) {
					t.Errorf("doc %q: missing %v (u=%q v=%q)", doc, tup,
						tup.Get("x").Content([]byte(doc)), tup.Get("y").Content([]byte(doc)))
				}
			}
			for _, tup := range got.Tuples() {
				if !want.Contains(tup) {
					t.Errorf("doc %q: spurious %v (u=%q v=%q)", doc, tup,
						tup.Get("x").Content([]byte(doc)), tup.Get("y").Content([]byte(doc)))
				}
			}
		}
	}
}

func TestCommutingIsProperCore(t *testing.T) {
	e := Commuting("x", "y", []byte("ab"))
	if !HasSelections(e) {
		t.Error("S_com has no selections")
	}
}

func TestCyclicShiftSpanner(t *testing.T) {
	e := CyclicShift("x", "y", []byte("ab"))
	for _, doc := range []string{"", "ab", "abba", "aabab"} {
		got := e.Eval([]byte(doc), vset.Functional)
		want := bruteCyclic([]byte(doc), "x", "y")
		if !got.Equal(want) {
			t.Errorf("doc %q:\n got %v\nwant %v", doc, got, want)
		}
	}
}
