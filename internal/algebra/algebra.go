// Package algebra implements the spanner algebra of Fagin, Kimelfeld,
// Reiss, and Vansummeren as surveyed in Section 1 and Section 2.3 of
// Schmid and Schweikardt (PODS 2022): union ∪, natural join ⋈, projection
// π, and string-equality selection ς=, applied on top of primitive regular
// spanners. Expressions evaluate in two independent ways — directly over
// materialized relations (the reference semantics), and via the
// core-simplification lemma, which rewrites every expression into the
// normal form π_Y(ς=_{Z1} ... ς=_{Zk}(⟦M⟧)) with M a single vset-automaton.
package algebra

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// Expr is a core-spanner algebra expression. Expressions are immutable
// trees over immutable automata: Eval allocates all of its working state
// per call, so a shared expression may be evaluated concurrently.
type Expr interface {
	// Vars returns the (visible) variable set of the expression.
	Vars() spans.VarSet
	// Eval materializes the span relation on doc under the given
	// semantics. This is the reference evaluation, used to cross-check
	// the automaton-level constructions.
	Eval(doc []byte, sem vset.Semantics) *spans.Relation
}

// Prim is a primitive regular spanner given by a vset-automaton. Src
// optionally carries the regex AST the automaton was compiled from; static
// analysis uses it for source-level rewrite hints (e.g. the core→refl
// translation of Section 3.2) and evaluation ignores it.
type Prim struct {
	A   *automata.NFA
	Src regex.Node
}

// Union is the spanner union L ∪ R.
type Union struct {
	L, R Expr
}

// Join is the natural join L ⋈ R.
type Join struct {
	L, R Expr
}

// Project is the projection π_Keep(Sub).
type Project struct {
	Sub  Expr
	Keep spans.VarSet
}

// SelectEq is the string-equality selection ς=_Z(Sub): it keeps the tuples
// whose spans for all variables in Z denote the same factor of the
// document (possibly at different positions).
type SelectEq struct {
	Sub Expr
	Z   spans.VarSet
}

// Fuse is the column-fusion operator ⨄_{Lambda→Target} of Section 3.2,
// used to state the core→refl correspondence.
type Fuse struct {
	Sub    Expr
	Lambda spans.VarSet
	Target spans.Var
}

func (p Prim) Vars() spans.VarSet { return p.A.Vars }

func (p Prim) Eval(doc []byte, sem vset.Semantics) *spans.Relation {
	return vset.Eval(p.A, doc, sem)
}

func (u Union) Vars() spans.VarSet { return u.L.Vars().Union(u.R.Vars()) }

func (u Union) Eval(doc []byte, sem vset.Semantics) *spans.Relation {
	return u.L.Eval(doc, sem).Union(u.R.Eval(doc, sem))
}

func (j Join) Vars() spans.VarSet { return j.L.Vars().Union(j.R.Vars()) }

func (j Join) Eval(doc []byte, sem vset.Semantics) *spans.Relation {
	return j.L.Eval(doc, sem).Join(j.R.Eval(doc, sem))
}

func (p Project) Vars() spans.VarSet { return p.Sub.Vars().Intersect(p.Keep) }

func (p Project) Eval(doc []byte, sem vset.Semantics) *spans.Relation {
	return p.Sub.Eval(doc, sem).Project(p.Keep)
}

func (s SelectEq) Vars() spans.VarSet { return s.Sub.Vars() }

func (s SelectEq) Eval(doc []byte, sem vset.Semantics) *spans.Relation {
	return s.Sub.Eval(doc, sem).SelectEqual(doc, s.Z)
}

func (f Fuse) Vars() spans.VarSet {
	return f.Sub.Vars().Minus(f.Lambda).Union(spans.NewVarSet(f.Target))
}

func (f Fuse) Eval(doc []byte, sem vset.Semantics) *spans.Relation {
	return f.Sub.Eval(doc, sem).Fuse(f.Lambda, f.Target)
}

// String renders an expression tree.
func String(e Expr) string {
	switch m := e.(type) {
	case Prim:
		return fmt.Sprintf("⟦M:%dq⟧%v", m.A.NumStates(), m.A.Vars)
	case Union:
		return "(" + String(m.L) + " ∪ " + String(m.R) + ")"
	case Join:
		return "(" + String(m.L) + " ⋈ " + String(m.R) + ")"
	case Project:
		return "π" + m.Keep.String() + "(" + String(m.Sub) + ")"
	case SelectEq:
		return "ς=" + m.Z.String() + "(" + String(m.Sub) + ")"
	case Fuse:
		return fmt.Sprintf("⨄%v→%s(%s)", m.Lambda, m.Target, String(m.Sub))
	}
	return "?"
}

// HasSelections reports whether the expression uses string-equality
// selection anywhere, i.e. whether it is a proper core (rather than
// regular) spanner expression.
func HasSelections(e Expr) bool {
	switch m := e.(type) {
	case Prim:
		return false
	case Union:
		return HasSelections(m.L) || HasSelections(m.R)
	case Join:
		return HasSelections(m.L) || HasSelections(m.R)
	case Project:
		return HasSelections(m.Sub)
	case SelectEq:
		return true
	case Fuse:
		return HasSelections(m.Sub)
	}
	return false
}
