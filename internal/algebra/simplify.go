package algebra

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// CoreForm is the normal form of the core-simplification lemma
// (Section 2.3): every core spanner equals
//
//	π_Visible( ς=_{Selections[0]} ... ς=_{Selections[k-1]} ( ⟦Automaton⟧ ) )
//
// where Automaton is a single vset-automaton. The construction introduces
// auxiliary variables (selection shadows and hidden projection variables),
// which is why the automaton's variable set is a superset of Visible; the
// inner evaluation is schemaless, exactly as in the schemaless version of
// the lemma proved by Schmid and Schweikardt on top of Maturana et al.
type CoreForm struct {
	Automaton  *automata.NFA
	Selections []spans.VarSet
	Visible    spans.VarSet
}

// Eval evaluates the normal form on a document.
func (c *CoreForm) Eval(doc []byte, sem vset.Semantics) *spans.Relation {
	rel := vset.Eval(c.Automaton, doc, vset.Schemaless)
	for _, z := range c.Selections {
		rel = rel.SelectEqual(doc, z)
	}
	rel = rel.Project(c.Visible)
	if sem == vset.Functional {
		out := spans.NewRelation()
		for _, t := range rel.Tuples() {
			if t.TotalOn(c.Visible) {
				out.Add(t)
			}
		}
		return out
	}
	return rel
}

// Simplify rewrites an algebra expression into CoreForm, implementing the
// core-simplification lemma constructively:
//
//   - ∪, ⋈, π are pushed into the automaton using the closure
//     constructions of package automata (this is the classical result that
//     the {∪,⋈,π}-closure of regex-formulas is the class of vset-automata,
//     Section 2.2);
//   - every ς=_Z is replaced by a selection over fresh shadow variables
//     that duplicate the markers of Z inside the branch it applies to and
//     are bound to empty (hence trivially equal) spans in branches it does
//     not apply to, so all selections commute to the top;
//   - projections rename their discarded variables apart and keep them in
//     the automaton, so a single outer projection remains.
//
// Fuse nodes are not part of the classical core algebra and are rejected.
func Simplify(e Expr) (*CoreForm, error) {
	g := &gensym{}
	f, err := simplify(e, g)
	if err != nil {
		return nil, err
	}
	return f, nil
}

type gensym struct{ n int }

func (g *gensym) fresh(hint string) spans.Var {
	g.n++
	return spans.Var(fmt.Sprintf("·%s%d", hint, g.n))
}

func simplify(e Expr, g *gensym) (*CoreForm, error) {
	switch m := e.(type) {
	case Prim:
		if m.A.HasRefs() {
			return nil, fmt.Errorf("algebra: primitive spanner has reference transitions; dereference first (package refl)")
		}
		return &CoreForm{Automaton: m.A, Visible: m.A.Vars}, nil

	case Union:
		l, err := simplify(m.L, g)
		if err != nil {
			return nil, err
		}
		r, err := simplify(m.R, g)
		if err != nil {
			return nil, err
		}
		// Bind the other side's selection variables to empty spans so its
		// selections hold trivially on this branch.
		la := bindEmptyAtStart(l.Automaton, selectionVars(r.Selections))
		ra := bindEmptyAtStart(r.Automaton, selectionVars(l.Selections))
		return &CoreForm{
			Automaton:  automata.Union(la, ra),
			Selections: append(append([]spans.VarSet{}, l.Selections...), r.Selections...),
			Visible:    l.Visible.Union(r.Visible),
		}, nil

	case Join:
		l, err := simplify(m.L, g)
		if err != nil {
			return nil, err
		}
		r, err := simplify(m.R, g)
		if err != nil {
			return nil, err
		}
		la, ra := l.Automaton, r.Automaton
		if len(la.Vars.Intersect(ra.Vars)) > 0 {
			// Normalize so both operands present consecutive shared
			// markers in one canonical order (Section 2.2, Option 1);
			// the product construction then synchronizes soundly.
			la = automata.Normalize(la)
			ra = automata.Normalize(ra)
		}
		return &CoreForm{
			Automaton:  automata.Join(la, ra),
			Selections: append(append([]spans.VarSet{}, l.Selections...), r.Selections...),
			Visible:    l.Visible.Union(r.Visible),
		}, nil

	case Project:
		sub, err := simplify(m.Sub, g)
		if err != nil {
			return nil, err
		}
		drop := sub.Visible.Minus(m.Keep)
		a := sub.Automaton
		sels := sub.Selections
		for _, v := range drop {
			nv := g.fresh("h_" + string(v) + "_")
			a = automata.RenameVar(a, v, nv)
			sels = renameInSelections(sels, v, nv)
		}
		return &CoreForm{
			Automaton:  a,
			Selections: sels,
			Visible:    sub.Visible.Intersect(m.Keep),
		}, nil

	case SelectEq:
		sub, err := simplify(m.Sub, g)
		if err != nil {
			return nil, err
		}
		if missing := m.Z.Minus(sub.Visible); len(missing) > 0 {
			return nil, fmt.Errorf("algebra: selection over non-visible variables %v", missing)
		}
		a := sub.Automaton
		shadow := make([]spans.Var, 0, len(m.Z))
		for _, v := range m.Z {
			nv := g.fresh("s_" + string(v) + "_")
			a = shadowCopy(a, v, nv)
			shadow = append(shadow, nv)
		}
		return &CoreForm{
			Automaton:  a,
			Selections: append(append([]spans.VarSet{}, sub.Selections...), spans.NewVarSet(shadow...)),
			Visible:    sub.Visible,
		}, nil

	case Fuse:
		return nil, fmt.Errorf("algebra: Fuse is not part of the core algebra; apply it after evaluation")
	}
	return nil, fmt.Errorf("algebra: cannot simplify node %T", e)
}

func selectionVars(sels []spans.VarSet) spans.VarSet {
	var out spans.VarSet
	for _, z := range sels {
		out = out.Union(z)
	}
	return out
}

func renameInSelections(sels []spans.VarSet, oldVar, newVar spans.Var) []spans.VarSet {
	out := make([]spans.VarSet, len(sels))
	for i, z := range sels {
		if z.Contains(oldVar) {
			out[i] = z.Minus(spans.NewVarSet(oldVar)).Union(spans.NewVarSet(newVar))
		} else {
			out[i] = z
		}
	}
	return out
}

// shadowCopy returns a copy of a in which every marker transition of v is
// immediately followed by the corresponding marker of shadow, so shadow
// always extracts exactly the span of v.
func shadowCopy(a *automata.NFA, v, shadow spans.Var) *automata.NFA {
	out := automata.NewNFA(a.Vars.Union(spans.NewVarSet(shadow)))
	base := out.NumStates()
	for range a.Final {
		out.AddState()
	}
	out.AddEps(out.Start, base+a.Start)
	for q := range a.Final {
		if a.Final[q] {
			out.SetFinal(base + q)
		}
		for _, r := range a.Eps[q] {
			out.AddEps(base+q, base+r)
		}
		for b, rs := range a.Letters[q] {
			for _, r := range rs {
				out.AddLetter(base+q, b, base+r)
			}
		}
		for mk, rs := range a.Markers[q] {
			for _, r := range rs {
				if mk.Var == v {
					mid := out.AddState()
					out.AddMarker(base+q, mk, mid)
					out.AddMarker(mid, automata.Marker{Var: shadow, Close: mk.Close}, base+r)
				} else {
					out.AddMarker(base+q, mk, base+r)
				}
			}
		}
		for rv, rs := range a.Refs[q] {
			for _, r := range rs {
				out.AddRef(base+q, rv, base+r)
			}
		}
	}
	return out
}

// bindEmptyAtStart prefixes the automaton with empty-span bindings
// z▷ ◁z (at document position 1) for each of the given variables.
func bindEmptyAtStart(a *automata.NFA, vars spans.VarSet) *automata.NFA {
	if len(vars) == 0 {
		return a
	}
	out := automata.NewNFA(a.Vars.Union(vars))
	cur := out.Start
	for _, v := range vars {
		mid := out.AddState()
		next := out.AddState()
		out.AddMarker(cur, automata.Marker{Var: v}, mid)
		out.AddMarker(mid, automata.Marker{Var: v, Close: true}, next)
		cur = next
	}
	base := out.NumStates()
	for range a.Final {
		out.AddState()
	}
	out.AddEps(cur, base+a.Start)
	for q := range a.Final {
		if a.Final[q] {
			out.SetFinal(base + q)
		}
		for _, r := range a.Eps[q] {
			out.AddEps(base+q, base+r)
		}
		for b, rs := range a.Letters[q] {
			for _, r := range rs {
				out.AddLetter(base+q, b, base+r)
			}
		}
		for mk, rs := range a.Markers[q] {
			for _, r := range rs {
				out.AddMarker(base+q, mk, base+r)
			}
		}
		for rv, rs := range a.Refs[q] {
			for _, r := range rs {
				out.AddRef(base+q, rv, base+r)
			}
		}
	}
	return out
}
