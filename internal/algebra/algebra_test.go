package algebra

import (
	"strings"
	"testing"

	"docspanner/internal/automata"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

func compile(t *testing.T, src string) *automata.NFA {
	t.Helper()
	n, err := regex.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte("abc")})
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return a
}

func prim(t *testing.T, src string) Expr { return Prim{A: compile(t, src)} }

func TestSelectEqIntroExample(t *testing.T) {
	// Section 1: α := !x{(a|b)*}(a|b)*!y{a*b*} on abaaab.
	// ς={x,y} keeps ([1,3⟩,[5,7⟩) (ab=ab) and discards ([1,3⟩,[4,7⟩).
	e := SelectEq{Sub: prim(t, "!x{(a|b)*}(a|b)*!y{a*b*}"), Z: spans.NewVarSet("x", "y")}
	rel := e.Eval([]byte("abaaab"), vset.Functional)
	keep := spans.NewTuple("x", spans.S(1, 3), "y", spans.S(5, 7))
	drop := spans.NewTuple("x", spans.S(1, 3), "y", spans.S(4, 7))
	if !rel.Contains(keep) {
		t.Error("equal-content tuple discarded")
	}
	if rel.Contains(drop) {
		t.Error("unequal-content tuple kept")
	}
}

func TestUnionJoinProjectEval(t *testing.T) {
	doc := []byte("ab")
	u := Union{L: prim(t, "!x{a}b"), R: prim(t, "a!x{b}")}
	got := u.Eval(doc, vset.Functional)
	want := spans.NewRelation(
		spans.NewTuple("x", spans.S(1, 2)),
		spans.NewTuple("x", spans.S(2, 3)),
	)
	if !got.Equal(want) {
		t.Errorf("Union eval = %v", got)
	}

	j := Join{L: prim(t, "!x{a}!y{b}"), R: prim(t, "!y{b}|!x{a}!y{b}")}
	gj := j.Eval(doc, vset.Functional)
	wj := spans.NewRelation(spans.NewTuple("x", spans.S(1, 2), "y", spans.S(2, 3)))
	if !gj.Equal(wj) {
		t.Errorf("Join eval = %v", gj)
	}

	p := Project{Sub: prim(t, "!x{a}!y{b}"), Keep: spans.NewVarSet("y")}
	gp := p.Eval(doc, vset.Functional)
	if gp.Len() != 1 || !gp.Contains(spans.NewTuple("y", spans.S(2, 3))) {
		t.Errorf("Project eval = %v", gp)
	}
}

func TestFuseEval(t *testing.T) {
	e := Fuse{
		Sub:    prim(t, "!x1{a}b!x2{a}"),
		Lambda: spans.NewVarSet("x1", "x2"),
		Target: "x",
	}
	got := e.Eval([]byte("aba"), vset.Functional)
	if got.Len() != 1 || !got.Contains(spans.NewTuple("x", spans.S(1, 4))) {
		t.Errorf("Fuse eval = %v", got)
	}
}

func TestHasSelections(t *testing.T) {
	plain := Union{L: prim(t, "!x{a}"), R: prim(t, "!x{b}")}
	if HasSelections(plain) {
		t.Error("regular expression reported core")
	}
	core := Project{Sub: SelectEq{Sub: plain, Z: spans.NewVarSet("x")}, Keep: spans.NewVarSet("x")}
	if !HasSelections(core) {
		t.Error("core expression not detected")
	}
}

// exprCases are algebra expressions used to cross-validate Simplify
// against the reference evaluation.
func exprCases(t *testing.T) map[string]Expr {
	return map[string]Expr{
		"prim": prim(t, "!x{(a|b)*}!y{b}!z{(a|b)*}"),
		"union": Union{
			L: prim(t, "!x{a}.*"),
			R: prim(t, ".*!x{b}"),
		},
		"join": Join{
			L: prim(t, ".*!x{ab*}.*"),
			R: prim(t, ".*!x{a*b}.*"),
		},
		"join-disjoint": Join{
			L: prim(t, "!x{a*}.*"),
			R: prim(t, ".*!y{b*}"),
		},
		"project": Project{
			Sub:  prim(t, "!x{(a|b)*}!y{b}!z{(a|b)*}"),
			Keep: spans.NewVarSet("y"),
		},
		"select": SelectEq{
			Sub: prim(t, "!x{(a|b)*}(a|b)*!y{(a|b)*}"),
			Z:   spans.NewVarSet("x", "y"),
		},
		"select-project": Project{
			Sub: SelectEq{
				Sub: prim(t, "!x{(a|b)+}.*!y{(a|b)+}"),
				Z:   spans.NewVarSet("x", "y"),
			},
			Keep: spans.NewVarSet("x"),
		},
		"select-union": Union{
			L: SelectEq{
				Sub: prim(t, "!x{a+}!y{a+}"),
				Z:   spans.NewVarSet("x", "y"),
			},
			R: prim(t, "!x{b}!y{b*}"),
		},
		"select-join": Join{
			L: SelectEq{
				Sub: prim(t, "!x{a+}.*!y{a+}"),
				Z:   spans.NewVarSet("x", "y"),
			},
			R: prim(t, "!x{aa}.*"),
		},
		"nested": Project{
			Sub: SelectEq{
				Sub: Union{
					L: Join{
						L: prim(t, ".*!x{a+}!y{b+}.*"),
						R: prim(t, ".*!y{bb}.*"),
					},
					R: prim(t, "!x{a}!y{bb}.*"),
				},
				Z: spans.NewVarSet("y"),
			},
			Keep: spans.NewVarSet("x", "y"),
		},
	}
}

func TestCoreSimplificationLemma(t *testing.T) {
	docs := [][]byte{
		nil,
		[]byte("a"),
		[]byte("ab"),
		[]byte("aabb"),
		[]byte("abab"),
		[]byte("aaabb"),
	}
	for name, e := range exprCases(t) {
		cf, err := Simplify(e)
		if err != nil {
			t.Errorf("%s: Simplify: %v", name, err)
			continue
		}
		for _, doc := range docs {
			want := e.Eval(doc, vset.Functional)
			got := cf.Eval(doc, vset.Functional)
			if !got.Equal(want) {
				t.Errorf("%s on %q:\nsimplified %v\nreference  %v", name, doc, got, want)
			}
		}
	}
}

func TestSimplifyStructure(t *testing.T) {
	// The normal form of a selection-free expression has no selections:
	// the {∪,⋈,π}-closure of regex formulas is the class of regular
	// spanners (Section 2.2).
	e := Project{
		Sub:  Union{L: prim(t, "!x{a}!y{b}"), R: prim(t, "!x{b}!y{a}")},
		Keep: spans.NewVarSet("x"),
	}
	cf, err := Simplify(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(cf.Selections) != 0 {
		t.Errorf("selection-free expression got %d selections", len(cf.Selections))
	}
	if !cf.Visible.Equal(spans.NewVarSet("x")) {
		t.Errorf("Visible = %v", cf.Visible)
	}

	// One selection in, one selection out.
	s := SelectEq{Sub: prim(t, "!x{a+}!y{a+}"), Z: spans.NewVarSet("x", "y")}
	cs, err := Simplify(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Selections) != 1 {
		t.Errorf("got %d selections, want 1", len(cs.Selections))
	}
}

func TestSimplifyErrors(t *testing.T) {
	// Selection over a projected-away variable.
	bad := SelectEq{
		Sub: Project{Sub: prim(t, "!x{a}!y{b}"), Keep: spans.NewVarSet("x")},
		Z:   spans.NewVarSet("x", "y"),
	}
	if _, err := Simplify(bad); err == nil {
		t.Error("selection over non-visible variable accepted")
	}
	// Fuse is not core algebra.
	f := Fuse{Sub: prim(t, "!x{a}"), Lambda: spans.NewVarSet("x"), Target: "y"}
	if _, err := Simplify(f); err == nil {
		t.Error("Fuse accepted by Simplify")
	}
}

func TestSimplifyString(t *testing.T) {
	e := Project{
		Sub:  SelectEq{Sub: prim(t, "!x{a}!y{b}"), Z: spans.NewVarSet("x", "y")},
		Keep: spans.NewVarSet("x"),
	}
	s := String(e)
	if s == "" || s == "?" {
		t.Errorf("String = %q", s)
	}
}

func TestExprVars(t *testing.T) {
	pa := prim(t, "!x{a}")
	pb := prim(t, "!y{b}")
	cases := []struct {
		e    Expr
		want spans.VarSet
	}{
		{pa, spans.NewVarSet("x")},
		{Union{L: pa, R: pb}, spans.NewVarSet("x", "y")},
		{Join{L: pa, R: pb}, spans.NewVarSet("x", "y")},
		{Project{Sub: Join{L: pa, R: pb}, Keep: spans.NewVarSet("y")}, spans.NewVarSet("y")},
		{SelectEq{Sub: Join{L: pa, R: pb}, Z: spans.NewVarSet("x", "y")}, spans.NewVarSet("x", "y")},
		{Fuse{Sub: Join{L: pa, R: pb}, Lambda: spans.NewVarSet("x", "y"), Target: "z"}, spans.NewVarSet("z")},
	}
	for i, c := range cases {
		if !c.e.Vars().Equal(c.want) {
			t.Errorf("case %d: Vars = %v, want %v", i, c.e.Vars(), c.want)
		}
	}
}

func TestStringAndHasSelectionsAllNodes(t *testing.T) {
	pa := prim(t, "!x{a}")
	f := Fuse{Sub: SelectEq{Sub: Project{Sub: Join{L: pa, R: prim(t, "!y{b}")}, Keep: spans.NewVarSet("x", "y")}, Z: spans.NewVarSet("x", "y")}, Lambda: spans.NewVarSet("x", "y"), Target: "z"}
	s := String(f)
	for _, frag := range []string{"⨄", "ς=", "π", "⋈"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
	if !HasSelections(f) {
		t.Error("HasSelections through Fuse/Project failed")
	}
	if HasSelections(Fuse{Sub: pa, Lambda: spans.NewVarSet("x"), Target: "z"}) {
		t.Error("HasSelections false positive")
	}
}
