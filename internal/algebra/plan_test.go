package algebra

import (
	"strings"
	"testing"

	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

func planFor(t *testing.T, e Expr) *Plan {
	t.Helper()
	return FromExpr(e)
}

// evalBoth checks the plan against the expression on a document under a
// semantics (the plan's reference Eval must be the expression's Eval).
func evalBoth(t *testing.T, e Expr, p *Plan, doc string, sem vset.Semantics) {
	t.Helper()
	want := e.Eval([]byte(doc), sem)
	got := p.Eval([]byte(doc), sem)
	if !got.Equal(want) {
		t.Fatalf("plan %s on %q: got %v, want %v", p, doc, got, want)
	}
}

func TestFromExprMirrorsTree(t *testing.T) {
	e := Project{
		Sub:  SelectEq{Sub: Join{L: prim(t, "!x{a+}"), R: prim(t, ".*!y{a+}.*")}, Z: spans.NewVarSet("x", "y")},
		Keep: spans.NewVarSet("x"),
	}
	p := FromExpr(e)
	if p.Kind != PProject || p.Children[0].Kind != PSelect || p.Children[0].Children[0].Kind != PJoin {
		t.Fatalf("plan shape wrong: %s", p)
	}
	join := p.Children[0].Children[0]
	if join.Path != "$.Sub.Sub" || join.Children[0].Path != "$.Sub.Sub.L" {
		t.Errorf("lint paths wrong: %q, %q", join.Path, join.Children[0].Path)
	}
	if !p.Vars().Equal(spans.NewVarSet("x")) {
		t.Errorf("Vars = %v", p.Vars())
	}
	for _, doc := range []string{"", "a", "aa", "aba"} {
		evalBoth(t, e, FromExpr(e), doc, vset.Functional)
		evalBoth(t, e, FromExpr(e), doc, vset.Schemaless)
	}
}

func TestPushDownProjections(t *testing.T) {
	// π_x over a join with a junk variable on the right: the pushdown
	// must keep the join variable x on both sides and drop y below the
	// join.
	e := Project{
		Sub:  Join{L: prim(t, "!x{a+}b*"), R: prim(t, "!x{a+}b*!y{b}?")},
		Keep: spans.NewVarSet("x"),
	}
	p := PushDownProjections(FromExpr(e))
	if len(p.Vars().Minus(spans.NewVarSet("x"))) != 0 {
		t.Fatalf("schema after pushdown = %v", p.Vars())
	}
	var hasInnerProject func(*Plan) bool
	hasInnerProject = func(n *Plan) bool {
		if n.Kind == PProject && n.Children[0].Kind == PScan {
			return true
		}
		for _, c := range n.Children {
			if hasInnerProject(c) {
				return true
			}
		}
		return false
	}
	if !hasInnerProject(p) {
		t.Fatalf("projection not pushed to a scan:\n%s", p)
	}
	for _, doc := range []string{"", "a", "ab", "aab", "abb"} {
		evalBoth(t, e, PushDownProjections(FromExpr(e)), doc, vset.Functional)
		evalBoth(t, e, PushDownProjections(FromExpr(e)), doc, vset.Schemaless)
	}
}

func TestPushDownSelections(t *testing.T) {
	// ς={x,y} over a join whose right input binds both variables: the
	// selection must descend into that input.
	e := SelectEq{
		Sub: Join{L: prim(t, "!z{a+}.*"), R: prim(t, "!x{a+}b!y{a+}.*")},
		Z:   spans.NewVarSet("x", "y"),
	}
	p := PushDownSelections(FromExpr(e))
	if p.Kind != PJoin {
		t.Fatalf("selection not pushed below join: %s", p)
	}
	for _, doc := range []string{"", "aba", "aabaa", "ababa"} {
		evalBoth(t, e, PushDownSelections(FromExpr(e)), doc, vset.Functional)
		evalBoth(t, e, PushDownSelections(FromExpr(e)), doc, vset.Schemaless)
	}

	// Selection over a union distributes into both branches.
	u := SelectEq{
		Sub: Union{L: prim(t, "!x{a+}!y{a+}"), R: prim(t, "!x{a+}b!y{a+}")},
		Z:   spans.NewVarSet("x", "y"),
	}
	pu := PushDownSelections(FromExpr(u))
	if pu.Kind != PUnion || pu.Children[0].Kind != PSelect {
		t.Fatalf("selection not distributed over union: %s", pu)
	}
	for _, doc := range []string{"aa", "aba", "aaba"} {
		evalBoth(t, u, PushDownSelections(FromExpr(u)), doc, vset.Functional)
	}
}

func TestPruneEmptyAndDedup(t *testing.T) {
	// A scan with an empty language: the difference of a spanner with
	// itself.
	l := compile(t, "!x{a}")
	empty := vset.Difference(l, l)
	e := Union{L: Prim{A: empty}, R: prim(t, "!x{b}")}
	p := PruneEmpty(FromExpr(e))
	if p.Kind != PScan {
		t.Fatalf("empty branch not pruned: %s", p)
	}
	if len(p.Rewrites) == 0 {
		t.Error("prune left no provenance note")
	}

	// Duplicate union branches: same automaton pointer → structural dedup.
	shared := compile(t, "!x{a+}")
	d := Union{L: Prim{A: shared}, R: Prim{A: shared}}
	pd := DedupUnions(FromExpr(d), FusePolicy{})
	if pd.Kind != PScan {
		t.Fatalf("structural duplicate not deduped: %s", pd)
	}

	// Equivalent but distinct automata with equal schemas → semantic dedup.
	d2 := Union{L: prim(t, "!x{a+}"), R: prim(t, "!x{aa*}")}
	pd2 := DedupUnions(FromExpr(d2), FusePolicy{})
	if pd2.Kind != PScan {
		t.Fatalf("equivalent branches not deduped: %s", pd2)
	}

	// Different schemas must NOT dedup even if ref-word languages align.
	d3 := Union{L: prim(t, "!x{a}"), R: prim(t, "!y{a}")}
	if pd3 := DedupUnions(FromExpr(d3), FusePolicy{}); pd3.Kind != PUnion {
		t.Fatalf("branches with different schemas deduped: %s", pd3)
	}
}

func TestDropNoopSelects(t *testing.T) {
	bc := NewBoundCache()
	// One-variable selection over a functional scan is a no-op.
	e := SelectEq{Sub: prim(t, "!x{a+}"), Z: spans.NewVarSet("x")}
	if p := DropNoopSelects(FromExpr(e), FusePolicy{}, bc); p.Kind != PScan {
		t.Fatalf("one-variable functional selection kept: %s", p)
	}
	// Under schemaless semantics the same selection filters unassigned
	// tuples — droppable only because x is always bound here.
	if p := DropNoopSelects(FromExpr(e), FusePolicy{Schemaless: true}, bc); p.Kind != PScan {
		t.Fatalf("always-bound schemaless selection kept: %s", p)
	}
	// x bound on one branch only: NOT droppable under schemaless.
	e2 := SelectEq{Sub: prim(t, "(!x{a}|b)"), Z: spans.NewVarSet("x")}
	if p := DropNoopSelects(FromExpr(e2), FusePolicy{Schemaless: true}, bc); p.Kind != PSelect {
		t.Fatalf("sometimes-unbound schemaless selection dropped: %s", p)
	}
	// Selection on a variable the subtree never binds is empty.
	e3 := SelectEq{Sub: prim(t, "!x{a}"), Z: spans.NewVarSet("x", "zz")}
	if p := DropNoopSelects(FromExpr(e3), FusePolicy{}, bc); p.Kind != PEmpty {
		t.Fatalf("unbound selection not pruned: %s", p)
	}
}

func TestFuseRegularGuards(t *testing.T) {
	pol := FusePolicy{}
	// Union of scans with equal schemas fuses under both semantics.
	u := Union{L: prim(t, "!x{a}b"), R: prim(t, "a!x{b}")}
	pu := FuseRegular(FromExpr(u), pol)
	if pu.Kind != PScan {
		t.Fatalf("union not fused: %s", pu)
	}
	for _, doc := range []string{"", "ab", "ba", "abab"} {
		evalBoth(t, u, FuseRegular(FromExpr(u), pol), doc, vset.Functional)
		evalBoth(t, u, FuseRegular(FromExpr(u), FusePolicy{Schemaless: true}), doc, vset.Schemaless)
	}

	// Union with different schemas: fused under schemaless, kept under
	// functional (per-branch totality differs from fused totality).
	u2 := Union{L: prim(t, "!x{a}"), R: prim(t, "!y{b}")}
	if p := FuseRegular(FromExpr(u2), pol); p.Kind != PUnion {
		t.Fatalf("functional union with unequal schemas fused: %s", p)
	}
	if p := FuseRegular(FromExpr(u2), FusePolicy{Schemaless: true}); p.Kind != PScan {
		t.Fatalf("schemaless union not fused: %s", p)
	}
	for _, doc := range []string{"", "a", "b", "ab"} {
		evalBoth(t, u2, FuseRegular(FromExpr(u2), FusePolicy{Schemaless: true}), doc, vset.Schemaless)
	}

	// Join with a shared variable fuses under functional semantics...
	j := Join{L: prim(t, "!x{a+}b*"), R: prim(t, "!x{a+}b*!y{b}?")}
	if p := FuseRegular(FromExpr(j), pol); p.Kind != PScan {
		t.Fatalf("functional join not fused: %s", p)
	}
	for _, doc := range []string{"", "a", "ab", "aab", "abb"} {
		evalBoth(t, j, FuseRegular(FromExpr(j), pol), doc, vset.Functional)
	}
	// ...but NOT under schemaless when a shared variable can stay
	// unbound: L=(!v{a}|b), R=!v{b} on "b" relationally joins the
	// partial tuple {} with {v↦[1,2⟩}, which the synchronized product
	// cannot produce.
	j2 := Join{L: prim(t, "(!v{a}|b)"), R: prim(t, "!v{b}")}
	p2 := FuseRegular(FromExpr(j2), FusePolicy{Schemaless: true})
	if p2.Kind != PJoin {
		t.Fatalf("unsound schemaless join fusion applied: %s", p2)
	}
	for _, doc := range []string{"a", "b", "ab"} {
		evalBoth(t, j2, FuseRegular(FromExpr(j2), FusePolicy{Schemaless: true}), doc, vset.Schemaless)
	}

	// Projection fuses under schemaless (marker erasure) ...
	pr := Project{Sub: prim(t, "!x{a+}!y{b+}"), Keep: spans.NewVarSet("x")}
	if p := FuseRegular(FromExpr(pr), FusePolicy{Schemaless: true}); p.Kind != PScan {
		t.Fatalf("schemaless projection not fused: %s", p)
	}
	// ... and under functional only when every variable is always bound.
	if p := FuseRegular(FromExpr(pr), pol); p.Kind != PScan {
		t.Fatalf("functional projection over total scan not fused: %s", p)
	}
	prPartial := Project{Sub: prim(t, "(!x{a}|!y{b})"), Keep: spans.NewVarSet("x")}
	if p := FuseRegular(FromExpr(prPartial), pol); p.Kind != PProject {
		t.Fatalf("functional projection over partial scan fused: %s", p)
	}
	for _, doc := range []string{"", "a", "b", "ab", "ba"} {
		evalBoth(t, pr, FuseRegular(FromExpr(pr), pol), doc, vset.Functional)
		evalBoth(t, prPartial, FuseRegular(FromExpr(prPartial), pol), doc, vset.Functional)
		evalBoth(t, prPartial, FuseRegular(FromExpr(prPartial), FusePolicy{Schemaless: true}), doc, vset.Schemaless)
	}
}

func TestFusePolicyBudget(t *testing.T) {
	u := Union{L: prim(t, "!x{a+}"), R: prim(t, "!x{b+}")}
	// A 1-state budget forbids any fusion.
	if p := FuseRegular(FromExpr(u), FusePolicy{MaxStates: 1}); p.Kind != PUnion {
		t.Fatalf("fusion ignored the state budget: %s", p)
	}
}

func TestPlanStringAndFingerprint(t *testing.T) {
	e := Union{L: prim(t, "!x{a}"), R: prim(t, "!x{b}")}
	p1, p2 := FromExpr(e), FromExpr(e)
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("fingerprint not stable across FromExpr calls")
	}
	other := FromExpr(Union{L: prim(t, "!x{a}"), R: prim(t, "!x{b}")})
	if p1.Fingerprint() == other.Fingerprint() {
		t.Error("fingerprint ignores automaton identity")
	}
	if s := p1.String(); !strings.Contains(s, "∪") {
		t.Errorf("String = %q", s)
	}
}
