package algebra

// Logical rewrite passes over the plan IR. Every pass preserves the
// plan's relation on every document under the semantics it is invoked
// for; passes that are only sound under extra conditions (functional
// totality, always-bound variables) check those conditions with the
// static analyses of package vset before rewriting. The soundness
// arguments are subtle because the two result semantics differ in what
// a join or a one-variable selection means on partial tuples — each
// guard below states the exact condition it enforces.

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// FusePolicy bounds and configures the automaton-building rewrites (the
// executable core-simplification lemma) and carries the semantics flag
// the soundness guards depend on.
type FusePolicy struct {
	// Schemaless selects the result semantics the plan will be evaluated
	// under. Several guards differ between the two semantics.
	Schemaless bool
	// MaxStates caps the size of any automaton a fusion step may build;
	// larger fusions are skipped (the cost model's state-count budget).
	// Values < 1 default to 4096.
	MaxStates int
	// MaxNormStates caps the inputs to the Normalize (determinizing)
	// step that join fusion and union dedup need; values < 1 default
	// to 128. Normalization is worst-case exponential, so this gate is
	// about planning time, not correctness.
	MaxNormStates int
}

func (pol FusePolicy) maxStates() int {
	if pol.MaxStates > 0 {
		return pol.MaxStates
	}
	return 4096
}

func (pol FusePolicy) maxNormStates() int {
	if pol.MaxNormStates > 0 {
		return pol.MaxNormStates
	}
	return 128
}

// BoundCache memoizes vset.AlwaysBound per (automaton, variable) within
// one planning run.
type BoundCache map[*automata.NFA]map[spans.Var]bool

// NewBoundCache returns an empty cache for one planning run.
func NewBoundCache() BoundCache { return BoundCache{} }

// Bound reports (and memoizes) vset.AlwaysBound(a, v).
func (bc BoundCache) Bound(a *automata.NFA, v spans.Var) bool {
	m := bc[a]
	if m == nil {
		m = make(map[spans.Var]bool)
		bc[a] = m
	}
	b, ok := m[v]
	if !ok {
		b = vset.AlwaysBound(a, v)
		m[v] = b
	}
	return b
}

// AllBound reports whether every variable of vars is always bound in a.
func (bc BoundCache) AllBound(a *automata.NFA, vars spans.VarSet) bool {
	for _, v := range vars {
		if !bc.Bound(a, v) {
			return false
		}
	}
	return true
}

// PushDownProjections pushes projections toward the leaves: π∘π merges,
// π distributes over ∪, π over ⋈ keeps the shared variables on each
// input (classical projection pushdown, sound under both semantics
// because compatibility only constrains variables present in both input
// schemas), and π over ς= retains the selected variables. The pass
// rebuilds the plan so that every node's schema is the smallest the
// requested output permits.
func PushDownProjections(p *Plan) *Plan { return pushProj(p, nil, false) }

// pushProj returns a plan equivalent to π_want(p) when have is set
// (with schema exactly p.Vars() ∩ want), or p with its subtree
// optimized when not.
func pushProj(p *Plan, want spans.VarSet, have bool) *Plan {
	switch p.Kind {
	case PScan, PExtScan:
		return wrapProject(p, want, have)

	case PEmpty:
		if have {
			p.Schema = p.Schema.Intersect(want)
		}
		return p

	case PUnion:
		for i, c := range p.Children {
			p.Children[i] = pushProj(c, want, have)
		}
		return p

	case PJoin:
		if !have {
			for i, c := range p.Children {
				p.Children[i] = pushProj(c, nil, false)
			}
			return p
		}
		// Keep every variable shared between two inputs: compatibility
		// of the natural join is decided on those, so dropping them
		// early would change the result; everything else not wanted
		// above can go.
		childWant := want.Union(sharedVars(p.Children))
		narrowed := false
		for i, c := range p.Children {
			if len(c.Vars().Minus(childWant)) > 0 {
				narrowed = true
			}
			p.Children[i] = pushProj(c, childWant, true)
		}
		if narrowed {
			p.Note(fmt.Sprintf("pushdown: π%v pushed below ⋈ (join variables retained)", want))
		}
		return wrapProject(p, want, true)

	case PProject:
		nw := p.Keep
		if have {
			nw = nw.Intersect(want)
		}
		return pushProj(p.Children[0], nw, true)

	case PSelect:
		if !have {
			p.Children[0] = pushProj(p.Children[0], nil, false)
			return p
		}
		cw := want.Union(p.Z)
		if len(p.Children[0].Vars().Minus(cw)) > 0 {
			p.Note(fmt.Sprintf("pushdown: π%v pushed below ς= (selected variables retained)", want))
		}
		p.Children[0] = pushProj(p.Children[0], cw, true)
		return wrapProject(p, want, true)

	case PFuse:
		// Fusion renames a whole class of columns; treat it as a
		// barrier and keep the projection above it.
		p.Children[0] = pushProj(p.Children[0], nil, false)
		return wrapProject(p, want, true)
	}
	return p
}

// wrapProject places π_want above p when p's schema exceeds want.
func wrapProject(p *Plan, want spans.VarSet, have bool) *Plan {
	if !have {
		return p
	}
	vars := p.Vars()
	if len(vars.Minus(want)) == 0 {
		return p
	}
	np := &Plan{Kind: PProject, Children: []*Plan{p}, Keep: want.Intersect(vars), Path: p.Path}
	np.Note("pushdown: projection materialized here")
	return np
}

// sharedVars returns the union of all pairwise schema intersections.
func sharedVars(children []*Plan) spans.VarSet {
	var out spans.VarSet
	for i := 0; i < len(children); i++ {
		vi := children[i].Vars()
		for j := i + 1; j < len(children); j++ {
			out = out.Union(vi.Intersect(children[j].Vars()))
		}
	}
	return out
}

// PushDownSelections sinks string-equality selections toward the
// leaves: ς= distributes over ∪, swaps with π when the selected
// variables survive the projection, and descends into the unique join
// input that binds all selected variables (sound because the other
// inputs then never assign them, so the joined tuples' selected columns
// come from that input alone).
func PushDownSelections(p *Plan) *Plan {
	for i, c := range p.Children {
		p.Children[i] = PushDownSelections(c)
	}
	if p.Kind != PSelect {
		return p
	}
	return sinkSelect(p)
}

func sinkSelect(s *Plan) *Plan {
	child := s.Children[0]
	switch child.Kind {
	case PUnion:
		for i, c := range child.Children {
			ns := &Plan{Kind: PSelect, Z: s.Z, Children: []*Plan{c}, Path: s.Path, Rewrites: append([]string(nil), s.Rewrites...)}
			ns.Note(fmt.Sprintf("pushdown: ς=%v distributed over union", s.Z))
			child.Children[i] = sinkSelect(ns)
		}
		return child

	case PProject:
		if len(s.Z.Minus(child.Keep)) == 0 {
			s.Children[0] = child.Children[0]
			s.Note(fmt.Sprintf("pushdown: ς=%v moved below π%v", s.Z, child.Keep))
			child.Children[0] = sinkSelect(s)
			return child
		}

	case PJoin:
		owner := -1
		for i, c := range child.Children {
			if len(s.Z.Intersect(c.Vars())) == 0 {
				continue
			}
			if owner >= 0 {
				return s // selected variables span several inputs
			}
			owner = i
		}
		if owner >= 0 && len(s.Z.Minus(child.Children[owner].Vars())) == 0 {
			s.Children[0] = child.Children[owner]
			s.Note(fmt.Sprintf("pushdown: ς=%v pushed into join input", s.Z))
			child.Children[owner] = sinkSelect(s)
			return child
		}
	}
	return s
}

// PruneEmpty replaces provably empty subtrees by PEmpty and propagates
// emptiness upward (an empty union branch disappears, an empty join
// input empties the join, ...). Sound under both semantics: an empty
// scan language yields the empty relation either way.
func PruneEmpty(p *Plan) *Plan {
	for i, c := range p.Children {
		p.Children[i] = PruneEmpty(c)
	}
	switch p.Kind {
	case PScan:
		if p.Auto.Empty() {
			return emptyNode(p, "prune: scan language is empty (SP001)")
		}

	case PUnion:
		live := p.Children[:0]
		dropped := 0
		for _, c := range p.Children {
			if c.Kind == PEmpty {
				dropped++
			} else {
				live = append(live, c)
			}
		}
		if len(live) == 0 {
			return emptyNode(p, "prune: every union branch is provably empty")
		}
		if dropped > 0 && len(live) == 1 {
			live[0].Note("prune: empty sibling union branch dropped")
			return live[0]
		}
		if dropped > 0 {
			p.Note(fmt.Sprintf("prune: %d empty union branch(es) dropped", dropped))
		}
		p.Children = live

	case PJoin:
		for _, c := range p.Children {
			if c.Kind == PEmpty {
				return emptyNode(p, "prune: join input is provably empty (SP003)")
			}
		}

	case PProject, PSelect, PFuse:
		if p.Children[0].Kind == PEmpty {
			return emptyNode(p, "prune: operand is provably empty")
		}
	}
	return p
}

func emptyNode(p *Plan, msg string) *Plan {
	np := &Plan{Kind: PEmpty, Schema: p.Vars(), Path: p.Path, Rewrites: append(append([]string(nil), p.Rewrites...), msg)}
	return np
}

// EmptyFor replaces p by a provably empty plan with the same schema,
// recording msg as the rewrite that justified the prune. Exported for
// the planner's lint-driven pruning.
func EmptyFor(p *Plan, msg string) *Plan { return emptyNode(p, msg) }

// DedupUnions drops a union branch that provably duplicates its sibling
// (spanlint's SP008). Structurally identical branches (same automata by
// pointer, same shape) are equal under any semantics; scan branches are
// additionally compared by spanner equivalence, which requires equal
// variable sets — two automata with different schemas can align to the
// same ref-word language yet differ functionally.
func DedupUnions(p *Plan, pol FusePolicy) *Plan {
	for i, c := range p.Children {
		p.Children[i] = DedupUnions(c, pol)
	}
	if p.Kind != PUnion || len(p.Children) != 2 {
		return p
	}
	l, r := p.Children[0], p.Children[1]
	if l.Fingerprint() == r.Fingerprint() {
		l.Note("dedup-union: branches are structurally identical, right branch dropped (SP008)")
		return l
	}
	if l.Kind == PScan && r.Kind == PScan && !l.Auto.HasRefs() && !r.Auto.HasRefs() &&
		l.Auto.Vars.Equal(r.Auto.Vars) &&
		l.Auto.NumStates() <= pol.maxNormStates() && r.Auto.NumStates() <= pol.maxNormStates() &&
		vset.Equivalent(l.Auto, r.Auto) {
		l.Note("dedup-union: branches extract the same relation on every document, right branch dropped (SP008)")
		return l
	}
	return p
}

// DropNoopSelects removes string-equality selections that are provably
// no-ops and replaces provably empty ones by PEmpty (spanlint's SP005).
// The no-op drops need the selected variables to be assigned in every
// tuple: guaranteed for a functional-semantics scan (per-primitive
// totality), and established by vset.AlwaysBound under the schemaless
// semantics, where a one-variable selection is NOT vacuous (it filters
// tuples that leave the variable unassigned).
func DropNoopSelects(p *Plan, pol FusePolicy, bc BoundCache) *Plan {
	for i, c := range p.Children {
		p.Children[i] = DropNoopSelects(c, pol, bc)
	}
	if p.Kind != PSelect {
		return p
	}
	c := p.Children[0]
	if len(p.Z) == 0 {
		c.Note("simplify: empty selection class dropped")
		return c
	}
	if unbound := p.Z.Minus(c.Vars()); len(unbound) > 0 {
		return emptyNode(p, fmt.Sprintf("prune: selection on never-bound %v is always empty (SP005)", unbound))
	}
	if c.Kind != PScan || c.Auto.HasRefs() {
		return p
	}
	if !vset.JointlyBindable(c.Auto, p.Z) {
		return emptyNode(p, fmt.Sprintf("prune: %v never jointly bound, selection always empty (SP005)", p.Z))
	}
	assigned := !pol.Schemaless // functional scans filter for totality already
	if !assigned {
		assigned = bc.AllBound(c.Auto, p.Z)
	}
	if !assigned {
		return p
	}
	if len(p.Z) == 1 {
		c.Note(fmt.Sprintf("simplify: one-variable selection ς=%v dropped (always assigned) (SP005)", p.Z))
		return c
	}
	if allSameSpan(c.Auto, p.Z) {
		c.Note(fmt.Sprintf("simplify: ς=%v dropped — variables provably extract the same span (SP005)", p.Z))
		return c
	}
	return p
}

func allSameSpan(a *automata.NFA, z spans.VarSet) bool {
	for i := 0; i < len(z); i++ {
		for j := i + 1; j < len(z); j++ {
			if !vset.AlwaysSameSpan(a, z[i], z[j]) {
				return false
			}
		}
	}
	return true
}

// FuseRegular is the executable core-simplification pass: bottom-up, it
// collapses ∪/⋈/π over scan nodes into single vset-automata using the
// closure constructions of package automata, bounded by the policy's
// state budget. Guards per operator and semantics:
//
//   - union, schemaless: always sound (the ref-word language of the
//     union automaton is the union of the languages);
//   - union, functional: requires equal variable sets — otherwise the
//     per-branch totality filters differ from the fused one;
//   - join, functional: sound after Normalize (totality forces shared
//     variables to be bound on both sides, which the synchronized
//     product captures exactly);
//   - join, schemaless: requires every shared variable to be
//     always-bound on both sides — the synchronized product cannot
//     produce the partial-tuple joins where one side leaves a shared
//     variable unassigned;
//   - projection, schemaless: always sound (marker erasure);
//   - projection, functional: requires every automaton variable to be
//     always-bound, because erasing a sometimes-unbound variable's
//     markers would admit runs the per-primitive totality filter
//     excludes.
func FuseRegular(p *Plan, pol FusePolicy) *Plan {
	return fuseNode(p, pol, NewBoundCache())
}

func fuseNode(p *Plan, pol FusePolicy, bc BoundCache) *Plan {
	for i, c := range p.Children {
		p.Children[i] = fuseNode(c, pol, bc)
	}
	switch p.Kind {
	case PUnion:
		if len(p.Children) != 2 {
			return p
		}
		l, r := p.Children[0], p.Children[1]
		if !scannable(l) || !scannable(r) {
			return p
		}
		if !pol.Schemaless && !l.Auto.Vars.Equal(r.Auto.Vars) {
			return p
		}
		if l.Auto.NumStates()+r.Auto.NumStates()+1 > pol.maxStates() {
			return p
		}
		return fusedScan(p, automata.Union(l.Auto, r.Auto), "core-simplify: ∪ fused into one automaton", l, r)

	case PJoin:
		if len(p.Children) != 2 {
			return p
		}
		l, r := p.Children[0], p.Children[1]
		if !scannable(l) || !scannable(r) {
			return p
		}
		la, ra := l.Auto, r.Auto
		shared := la.Vars.Intersect(ra.Vars)
		if len(shared) > 0 {
			if pol.Schemaless && !(bc.AllBound(la, shared) && bc.AllBound(ra, shared)) {
				return p
			}
			if la.NumStates() > pol.maxNormStates() || ra.NumStates() > pol.maxNormStates() {
				return p
			}
			la, ra = automata.Normalize(la), automata.Normalize(ra)
		}
		if la.NumStates()*ra.NumStates() > pol.maxStates() {
			return p
		}
		fused := automata.Join(la, ra)
		if fused.NumStates() > pol.maxStates() {
			return p
		}
		return fusedScan(p, fused, "core-simplify: ⋈ fused into one automaton", l, r)

	case PProject:
		c := p.Children[0]
		if !scannable(c) {
			return p
		}
		if !pol.Schemaless && !bc.AllBound(c.Auto, c.Auto.Vars) {
			return p
		}
		return fusedScan(p, automata.Project(c.Auto, p.Keep), fmt.Sprintf("core-simplify: π%v fused into the automaton", p.Keep), c)
	}
	return p
}

func scannable(p *Plan) bool { return p.Kind == PScan && !p.Auto.HasRefs() }

// fusedScan builds the scan node replacing p, carrying the children's
// rewrite provenance forward.
func fusedScan(p *Plan, a *automata.NFA, msg string, children ...*Plan) *Plan {
	a = a.Trim()
	np := &Plan{Kind: PScan, Auto: a, Path: p.Path, Rewrites: append([]string(nil), p.Rewrites...)}
	for _, c := range children {
		np.Rewrites = append(np.Rewrites, c.Rewrites...)
	}
	np.Note(fmt.Sprintf("%s (%d states)", msg, a.NumStates()))
	return np
}
