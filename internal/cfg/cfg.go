// Package cfg implements context-free document spanners in the sense of
// Peterfreund (ICDT 2021), which the survey discusses in Section 2.1 as
// the natural instantiation of the declarative framework with
// "context-free" in place of "regular": a grammar over the extended
// alphabet Σ ∪ {x▷, ◁x} whose language is a set of subword-marked words
// defines a spanner via ⟦L⟧(D) = { st(w) : w ∈ L, e(w) = D }.
//
// Evaluation uses an Earley parser in which marker terminals are
// zero-width: they are consumed at document boundaries without advancing
// the input. Items carry the set of markers consumed and their positions,
// so the parser directly produces the span relation. This is a reference
// implementation: its cost grows with derivation ambiguity (the result
// relation can be exponential in grammar-dependent ways), which is
// expected — the survey notes that context-free spanners trade the
// regular spanners' enumeration guarantees for expressiveness.
package cfg

import (
	"fmt"
	"strings"

	"docspanner/internal/refwords"
	"docspanner/internal/spans"
)

// SymKind discriminates grammar symbols.
type SymKind uint8

const (
	// NonTerm is a nonterminal reference.
	NonTerm SymKind = iota
	// Letter is an alphabet terminal.
	Letter
	// MarkerSym is a marker terminal x▷ or ◁x (zero document width).
	MarkerSym
)

// Sym is one symbol of a production body.
type Sym struct {
	Kind   SymKind
	B      byte
	Name   string
	Marker refwords.Marker
}

// Prod is a production Head → Body (empty Body = ε-production).
type Prod struct {
	Head string
	Body []Sym
}

// Grammar is a context-free grammar over the extended alphabet.
type Grammar struct {
	Start string
	Prods []Prod
}

// Vars returns the variables whose markers occur in the grammar.
func (g *Grammar) Vars() spans.VarSet {
	var vs []spans.Var
	for _, p := range g.Prods {
		for _, s := range p.Body {
			if s.Kind == MarkerSym {
				vs = append(vs, s.Marker.Var)
			}
		}
	}
	return spans.NewVarSet(vs...)
}

// Parse reads a grammar from a textual notation, one production group per
// line:
//
//	S -> 'a' S 'a' | T
//	T -> >x B <x
//	B -> 'b' B | ()
//
// Uppercase-led identifiers are nonterminals, 'c' is a letter terminal,
// >x and <x are the markers of variable x, and () is ε. The start symbol
// is the head of the first line.
func Parse(src string) (*Grammar, error) {
	g := &Grammar{}
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "->", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("cfg: line %d: missing ->", ln+1)
		}
		head := strings.TrimSpace(parts[0])
		if head == "" {
			return nil, fmt.Errorf("cfg: line %d: empty head", ln+1)
		}
		if g.Start == "" {
			g.Start = head
		}
		for _, alt := range strings.Split(parts[1], "|") {
			body, err := parseBody(strings.TrimSpace(alt))
			if err != nil {
				return nil, fmt.Errorf("cfg: line %d: %v", ln+1, err)
			}
			g.Prods = append(g.Prods, Prod{Head: head, Body: body})
		}
	}
	if g.Start == "" {
		return nil, fmt.Errorf("cfg: empty grammar")
	}
	return g, nil
}

func parseBody(src string) ([]Sym, error) {
	var out []Sym
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '\'':
			if i+2 >= len(src) || src[i+2] != '\'' {
				return nil, fmt.Errorf("bad letter terminal at %q", src[i:])
			}
			out = append(out, Sym{Kind: Letter, B: src[i+1]})
			i += 3
		case c == '>' || c == '<':
			j := i + 1
			for j < len(src) && isIdent(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("missing variable after %c", c)
			}
			out = append(out, Sym{Kind: MarkerSym, Marker: refwords.Marker{
				Var:   spans.Var(src[i+1 : j]),
				Close: c == '<',
			}})
			i = j
		case c == '(' && i+1 < len(src) && src[i+1] == ')':
			i += 2 // ε: contributes nothing
		case isIdent(c):
			j := i
			for j < len(src) && isIdent(src[j]) {
				j++
			}
			out = append(out, Sym{Kind: NonTerm, Name: src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("unexpected %q", src[i:])
		}
	}
	return out, nil
}

func isIdent(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_'
}

// Validate checks that every referenced nonterminal has a production and
// that each variable's markers both occur.
func (g *Grammar) Validate() error {
	heads := map[string]bool{}
	for _, p := range g.Prods {
		heads[p.Head] = true
	}
	opens := map[spans.Var]bool{}
	closes := map[spans.Var]bool{}
	for _, p := range g.Prods {
		for _, s := range p.Body {
			switch s.Kind {
			case NonTerm:
				if !heads[s.Name] {
					return fmt.Errorf("cfg: undefined nonterminal %s", s.Name)
				}
			case MarkerSym:
				if s.Marker.Close {
					closes[s.Marker.Var] = true
				} else {
					opens[s.Marker.Var] = true
				}
			}
		}
	}
	if !heads[g.Start] {
		return fmt.Errorf("cfg: undefined start symbol %s", g.Start)
	}
	for v := range opens {
		if !closes[v] {
			return fmt.Errorf("cfg: variable %s has an open marker but no close marker", v)
		}
	}
	for v := range closes {
		if !opens[v] {
			return fmt.Errorf("cfg: variable %s has a close marker but no open marker", v)
		}
	}
	return nil
}
