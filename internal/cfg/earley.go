package cfg

import (
	"fmt"
	"sort"

	"docspanner/internal/spans"
)

// Earley evaluation of a context-free spanner. Marker terminals are
// zero-width: they fire at a document boundary without consuming a
// letter. Every item carries the mask and positions of the markers
// consumed inside its partial derivation; merging rejects duplicate
// markers, so only valid subword-marked words contribute results.

type item struct {
	prod   int
	dot    int
	origin int
	mask   uint64
	asg    string // packed marker positions (4 bytes per marker index)
}

// Eval computes the span relation of the grammar spanner on doc. Under
// functional semantics only total tuples are returned.
func (g *Grammar) Eval(doc []byte, functional bool) (*spans.Relation, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	vars := g.Vars()
	if len(vars) > 32 {
		return nil, fmt.Errorf("cfg: more than 32 variables")
	}
	markerIdx := func(m spans.Var, close bool) int {
		i := vars.Index(m) * 2
		if close {
			i++
		}
		return i
	}
	k := len(vars)
	zeroAsg := string(make([]byte, 4*2*k))

	prodsByHead := map[string][]int{}
	for i, p := range g.Prods {
		prodsByHead[p.Head] = append(prodsByHead[p.Head], i)
	}

	n := len(doc)
	sets := make([]map[item]bool, n+1)
	order := make([][]item, n+1)
	// completions[j][head]: zero-width completions (origin == j) recorded
	// so that later-added items expecting head at j can still advance.
	type comp struct {
		mask uint64
		asg  string
	}
	completions := make([]map[string][]comp, n+1)
	for i := range sets {
		sets[i] = map[item]bool{}
		completions[i] = map[string][]comp{}
	}

	var push func(j int, it item)
	push = func(j int, it item) {
		if sets[j][it] {
			return
		}
		sets[j][it] = true
		order[j] = append(order[j], it)
	}

	// Seed: predictions for the start symbol at 0.
	for _, pi := range prodsByHead[g.Start] {
		push(0, item{prod: pi, dot: 0, origin: 0, mask: 0, asg: zeroAsg})
	}

	setPos := func(asg string, idx, pos int) string {
		b := []byte(asg)
		off := idx * 4
		b[off] = byte(pos)
		b[off+1] = byte(pos >> 8)
		b[off+2] = byte(pos >> 16)
		b[off+3] = byte(pos >> 24)
		return string(b)
	}
	getPos := func(asg string, idx int) int {
		off := idx * 4
		return int(asg[off]) | int(asg[off+1])<<8 | int(asg[off+2])<<16 | int(asg[off+3])<<24
	}
	mergeAsg := func(a, b string, bMask uint64) string {
		out := []byte(a)
		for idx := 0; idx < 2*k; idx++ {
			if bMask&(1<<uint(idx)) != 0 {
				off := idx * 4
				copy(out[off:off+4], b[off:off+4])
			}
		}
		return string(out)
	}

	out := spans.NewRelation()

	for j := 0; j <= n; j++ {
		for w := 0; w < len(order[j]); w++ {
			it := order[j][w]
			p := g.Prods[it.prod]
			if it.dot == len(p.Body) {
				// Complete.
				if it.origin == j {
					completions[j][p.Head] = append(completions[j][p.Head], comp{it.mask, it.asg})
				}
				for _, parent := range order[it.origin] {
					pp := g.Prods[parent.prod]
					if parent.dot >= len(pp.Body) {
						continue
					}
					s := pp.Body[parent.dot]
					if s.Kind != NonTerm || s.Name != p.Head {
						continue
					}
					if parent.mask&it.mask != 0 {
						continue // duplicate marker: invalid word
					}
					push(j, item{
						prod:   parent.prod,
						dot:    parent.dot + 1,
						origin: parent.origin,
						mask:   parent.mask | it.mask,
						asg:    mergeAsg(parent.asg, it.asg, it.mask),
					})
				}
				if p.Head == g.Start && it.origin == 0 && j == n {
					if t, ok := tupleOf(it, vars, k, getPos, functional); ok {
						out.Add(t)
					}
				}
				continue
			}
			s := p.Body[it.dot]
			switch s.Kind {
			case NonTerm:
				for _, pi := range prodsByHead[s.Name] {
					push(j, item{prod: pi, dot: 0, origin: j, mask: 0, asg: zeroAsg})
				}
				// Zero-width completions already recorded for this set.
				for _, c := range completions[j][s.Name] {
					if it.mask&c.mask != 0 {
						continue
					}
					push(j, item{
						prod:   it.prod,
						dot:    it.dot + 1,
						origin: it.origin,
						mask:   it.mask | c.mask,
						asg:    mergeAsg(it.asg, c.asg, c.mask),
					})
				}
			case MarkerSym:
				idx := markerIdx(s.Marker.Var, s.Marker.Close)
				bit := uint64(1) << uint(idx)
				if it.mask&bit != 0 {
					continue
				}
				if s.Marker.Close {
					openIdx := idx - 1
					if it.mask&(1<<uint(openIdx)) == 0 {
						// The close may still be legal if the open was
						// consumed by an ancestor/sibling; we cannot see
						// it here, so allow and validate at the end.
						_ = openIdx
					}
				}
				push(j, item{
					prod:   it.prod,
					dot:    it.dot + 1,
					origin: it.origin,
					mask:   it.mask | bit,
					asg:    setPos(it.asg, idx, j+1),
				})
			case Letter:
				if j < n && doc[j] == s.B {
					push(j+1, item{
						prod:   it.prod,
						dot:    it.dot + 1,
						origin: it.origin,
						mask:   it.mask,
						asg:    it.asg,
					})
				}
			}
		}
	}
	return out, nil
}

// tupleOf converts a completed start item into a span tuple, rejecting
// invalid assignments (close before open, half-assigned variables under
// functional semantics).
func tupleOf(it item, vars spans.VarSet, k int, getPos func(string, int) int, functional bool) (spans.Tuple, bool) {
	t := make(spans.Tuple)
	for i, v := range vars {
		openBit := uint64(1) << uint(2*i)
		closeBit := uint64(1) << uint(2*i+1)
		hasOpen := it.mask&openBit != 0
		hasClose := it.mask&closeBit != 0
		switch {
		case hasOpen && hasClose:
			b := getPos(it.asg, 2*i)
			e := getPos(it.asg, 2*i+1)
			if e < b {
				return nil, false
			}
			t[v] = spans.S(b, e)
		case !hasOpen && !hasClose:
			if functional {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	return t, true
}

// Satisfiable decides whether the grammar generates any word at all
// (standard CFG emptiness via productive-nonterminal fixpoint).
func (g *Grammar) Satisfiable() bool {
	productive := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, p := range g.Prods {
			if productive[p.Head] {
				continue
			}
			ok := true
			for _, s := range p.Body {
				if s.Kind == NonTerm && !productive[s.Name] {
					ok = false
					break
				}
			}
			if ok {
				productive[p.Head] = true
				changed = true
			}
		}
	}
	return productive[g.Start]
}

// NonEmpty decides whether the spanner result on doc is non-empty.
func (g *Grammar) NonEmpty(doc []byte) (bool, error) {
	rel, err := g.Eval(doc, false)
	if err != nil {
		return false, err
	}
	return rel.Len() > 0, nil
}

// String renders the grammar.
func (g *Grammar) String() string {
	byHead := map[string][]string{}
	var heads []string
	for _, p := range g.Prods {
		if _, ok := byHead[p.Head]; !ok {
			heads = append(heads, p.Head)
		}
		var parts []string
		for _, s := range p.Body {
			switch s.Kind {
			case NonTerm:
				parts = append(parts, s.Name)
			case Letter:
				parts = append(parts, "'"+string(s.B)+"'")
			case MarkerSym:
				if s.Marker.Close {
					parts = append(parts, "<"+string(s.Marker.Var))
				} else {
					parts = append(parts, ">"+string(s.Marker.Var))
				}
			}
		}
		body := "()"
		if len(parts) > 0 {
			body = ""
			for i, q := range parts {
				if i > 0 {
					body += " "
				}
				body += q
			}
		}
		byHead[p.Head] = append(byHead[p.Head], body)
	}
	sort.SliceStable(heads, func(i, j int) bool {
		if heads[i] == g.Start {
			return heads[j] != g.Start
		}
		return false
	})
	var sb []byte
	for _, h := range heads {
		sb = append(sb, h...)
		sb = append(sb, " -> "...)
		for i, alt := range byHead[h] {
			if i > 0 {
				sb = append(sb, " | "...)
			}
			sb = append(sb, alt...)
		}
		sb = append(sb, '\n')
	}
	return string(sb)
}
