package cfg

import (
	"testing"

	"docspanner/internal/vset"
)

const rightLinearExample = `
S -> >x A
A -> 'a' A | 'b' A | <x Y
Y -> >y 'b' <y >z B
B -> 'a' B | 'b' B | <z
`

func TestIsRightLinear(t *testing.T) {
	if !mustGrammar(t, rightLinearExample).IsRightLinear() {
		t.Error("right-linear grammar misclassified")
	}
	center := mustGrammar(t, "S -> 'a' S 'a' | 'b'")
	if center.IsRightLinear() {
		t.Error("center-recursive grammar classified right-linear")
	}
}

func TestToNFAMatchesEarley(t *testing.T) {
	g := mustGrammar(t, rightLinearExample)
	nfa, err := g.ToNFA()
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"", "b", "ab", "ababbab", "aabba"} {
		want, err := g.Eval([]byte(doc), true)
		if err != nil {
			t.Fatal(err)
		}
		got := vset.Eval(nfa, []byte(doc), vset.Functional)
		if !got.Equal(want) {
			t.Errorf("doc %q:\n nfa    %v\n earley %v", doc, got, want)
		}
	}
}

func TestToNFARejectsCenterRecursion(t *testing.T) {
	g := mustGrammar(t, "S -> 'a' S 'a' | 'b'")
	if _, err := g.ToNFA(); err == nil {
		t.Error("non-right-linear grammar accepted")
	}
}

func TestFromNFARoundTrip(t *testing.T) {
	g := mustGrammar(t, rightLinearExample)
	nfa, err := g.ToNFA()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromNFA(nfa, "R")
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("FromNFA grammar invalid: %v", err)
	}
	if !back.IsRightLinear() {
		t.Error("FromNFA produced non-right-linear grammar")
	}
	for _, doc := range []string{"b", "ababbab"} {
		want, _ := g.Eval([]byte(doc), true)
		got, err := back.Eval([]byte(doc), true)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("doc %q: round-trip grammar differs", doc)
		}
	}
}

func TestEvalViaPicksNFA(t *testing.T) {
	g := mustGrammar(t, rightLinearExample)
	got, err := g.EvalVia([]byte("ababbab"), true)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Errorf("EvalVia = %d tuples", got.Len())
	}
	// Non-right-linear grammar falls back to Earley.
	center := mustGrammar(t, `
S -> 'a' S 'a' | T
T -> >x B <x
B -> 'b' B | ()
`)
	rel, err := center.EvalVia([]byte("aabbaa"), true)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Errorf("fallback EvalVia = %v", rel)
	}
}
