package cfg

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// Bridges between grammar spanners and regular spanners, making the
// inclusion "context-free ⊇ regular" of Section 2.1 constructive in both
// directions where it holds:
//
//   - every right-linear grammar compiles to an equivalent vset-automaton
//     (ToNFA), connecting the cfg package to the whole regular toolchain
//     (enumeration, compressed evaluation, static analysis);
//   - every NFA converts to a right-linear grammar (FromNFA), so any
//     regular spanner can serve as a sub-grammar.

// IsRightLinear reports whether every production body is a (possibly
// empty) string of terminals/markers followed by at most one trailing
// nonterminal.
func (g *Grammar) IsRightLinear() bool {
	for _, p := range g.Prods {
		for i, s := range p.Body {
			if s.Kind == NonTerm && i != len(p.Body)-1 {
				return false
			}
		}
	}
	return true
}

// ToNFA compiles a right-linear grammar into an equivalent NFA over the
// extended alphabet: one automaton state per nonterminal plus chain
// states for the terminal prefixes. Returns an error if the grammar is
// not right-linear.
func (g *Grammar) ToNFA() (*automata.NFA, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.IsRightLinear() {
		return nil, fmt.Errorf("cfg: grammar is not right-linear; evaluate with Eval instead")
	}
	nfa := automata.NewNFA(g.Vars())
	accept := nfa.AddState()
	nfa.SetFinal(accept)
	stateOf := map[string]int{}
	for _, p := range g.Prods {
		if _, ok := stateOf[p.Head]; !ok {
			stateOf[p.Head] = nfa.AddState()
		}
	}
	nfa.AddEps(nfa.Start, stateOf[g.Start])
	for _, p := range g.Prods {
		cur := stateOf[p.Head]
		last := len(p.Body) - 1
		endsInNonTerm := last >= 0 && p.Body[last].Kind == NonTerm
		for i, s := range p.Body {
			var next int
			atEnd := i == last
			switch {
			case s.Kind == NonTerm:
				nfa.AddEps(cur, stateOf[s.Name])
				continue
			case atEnd && !endsInNonTerm:
				next = accept
			default:
				next = nfa.AddState()
			}
			if s.Kind == Letter {
				nfa.AddLetter(cur, s.B, next)
			} else {
				nfa.AddMarker(cur, s.Marker, next)
			}
			cur = next
		}
		if len(p.Body) == 0 {
			nfa.AddEps(cur, accept)
		}
	}
	return nfa, nil
}

// FromNFA converts an NFA over the extended alphabet into an equivalent
// right-linear grammar: one nonterminal per state, a production per
// transition, and an ε-production per final state. Reference transitions
// are rejected (grammars have no reference symbols).
func FromNFA(nfa *automata.NFA, startName string) (*Grammar, error) {
	if nfa.HasRefs() {
		return nil, fmt.Errorf("cfg: reference transitions have no grammar counterpart")
	}
	name := func(q int) string {
		if q == nfa.Start {
			return startName
		}
		return fmt.Sprintf("%s_q%d", startName, q)
	}
	g := &Grammar{Start: startName}
	for q := range nfa.Final {
		if nfa.Final[q] {
			g.Prods = append(g.Prods, Prod{Head: name(q)})
		}
		for _, r := range nfa.Eps[q] {
			g.Prods = append(g.Prods, Prod{Head: name(q), Body: []Sym{{Kind: NonTerm, Name: name(r)}}})
		}
		for b, rs := range nfa.Letters[q] {
			for _, r := range rs {
				g.Prods = append(g.Prods, Prod{Head: name(q), Body: []Sym{
					{Kind: Letter, B: b},
					{Kind: NonTerm, Name: name(r)},
				}})
			}
		}
		for m, rs := range nfa.Markers[q] {
			for _, r := range rs {
				g.Prods = append(g.Prods, Prod{Head: name(q), Body: []Sym{
					{Kind: MarkerSym, Marker: m},
					{Kind: NonTerm, Name: name(r)},
				}})
			}
		}
	}
	return g, nil
}

// EvalVia evaluates the grammar spanner through the regular toolchain
// when the grammar is right-linear (falling back to Earley otherwise):
// a convenience that picks the asymptotically better pipeline.
func (g *Grammar) EvalVia(doc []byte, functional bool) (*spans.Relation, error) {
	if g.IsRightLinear() {
		nfa, err := g.ToNFA()
		if err == nil {
			sem := vset.Schemaless
			if functional {
				sem = vset.Functional
			}
			return vset.Eval(nfa, doc, sem), nil
		}
	}
	return g.Eval(doc, functional)
}
