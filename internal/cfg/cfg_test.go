package cfg

import (
	"testing"

	"docspanner/internal/spans"
)

func mustGrammar(t *testing.T, src string) *Grammar {
	t.Helper()
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseAndString(t *testing.T) {
	g := mustGrammar(t, `
S -> 'a' S 'a' | T
T -> >x B <x
B -> 'b' B | ()
`)
	if g.Start != "S" {
		t.Errorf("Start = %s", g.Start)
	}
	if len(g.Prods) != 5 {
		t.Errorf("%d productions", len(g.Prods))
	}
	if !g.Vars().Equal(spans.NewVarSet("x")) {
		t.Errorf("Vars = %v", g.Vars())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if _, err := Parse(g.String()); err != nil {
		t.Errorf("re-parse of String: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"S 'a'",     // missing ->
		"S -> 'ab'", // bad terminal
		"S -> >",    // missing variable
		"S -> $",    // junk
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
	// Undefined nonterminal / half-marked variable: Validate errors.
	g := mustGrammar(t, "S -> T")
	if err := g.Validate(); err == nil {
		t.Error("undefined nonterminal accepted")
	}
	g2 := mustGrammar(t, "S -> >x 'a'")
	if err := g2.Validate(); err == nil {
		t.Error("open without close accepted")
	}
}

func TestEvalCenterExtraction(t *testing.T) {
	// Non-regular spanner: x captures the center b-block of a^n b* a^n.
	g := mustGrammar(t, `
S -> 'a' S 'a' | T
T -> >x B <x
B -> 'b' B | ()
`)
	rel, err := g.Eval([]byte("aabbaa"), true)
	if err != nil {
		t.Fatal(err)
	}
	want := spans.NewRelation(spans.NewTuple("x", spans.S(3, 5)))
	if !rel.Equal(want) {
		t.Errorf("Eval = %v, want %v", rel, want)
	}
	// Unbalanced document: no result.
	rel2, err := g.Eval([]byte("aabba"), true)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Len() != 0 {
		t.Errorf("unbalanced doc matched: %v", rel2)
	}
}

func TestEvalWellNestedBrackets(t *testing.T) {
	// Dyck words with x on the content of some outermost bracket pair —
	// inherently context-free.
	g := mustGrammar(t, `
S -> D M D
M -> '(' >x D <x ')'
D -> '(' D ')' D | ()
`)
	rel, err := g.Eval([]byte("()(())"), true)
	if err != nil {
		t.Fatal(err)
	}
	// Outermost pairs: positions 1-2 content ε at [2,2⟩; positions 3-6
	// content "()" at [4,6⟩.
	want := spans.NewRelation(
		spans.NewTuple("x", spans.S(2, 2)),
		spans.NewTuple("x", spans.S(4, 6)),
	)
	if !rel.Equal(want) {
		t.Errorf("Eval = %v, want %v", rel, want)
	}
}

func TestEvalRegularFragmentAgreesWithExample(t *testing.T) {
	// The grammar for Example 1.1's spanner (right-linear = regular).
	g := mustGrammar(t, `
S -> >x A
A -> 'a' A | 'b' A | <x Y
Y -> >y 'b' <y >z B
B -> 'a' B | 'b' B | <z
`)
	rel, err := g.Eval([]byte("ababbab"), true)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Errorf("Eval returned %d tuples, want 4: %v", rel.Len(), rel)
	}
	if !rel.Contains(spans.NewTuple("x", spans.S(1, 4), "y", spans.S(4, 5), "z", spans.S(5, 8))) {
		t.Error("missing known tuple")
	}
}

func TestEvalSchemaless(t *testing.T) {
	g := mustGrammar(t, `
S -> >x 'a' <x | 'b'
`)
	rel, err := g.Eval([]byte("b"), false)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || !rel.Contains(spans.Tuple{}) {
		t.Errorf("schemaless Eval = %v", rel)
	}
	relF, err := g.Eval([]byte("b"), true)
	if err != nil {
		t.Fatal(err)
	}
	if relF.Len() != 0 {
		t.Errorf("functional Eval = %v", relF)
	}
}

func TestEvalEmptyDocument(t *testing.T) {
	g := mustGrammar(t, "S -> >x <x | 'a'")
	rel, err := g.Eval(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || !rel.Contains(spans.NewTuple("x", spans.S(1, 1))) {
		t.Errorf("Eval(ε) = %v", rel)
	}
}

func TestSatisfiable(t *testing.T) {
	ok := mustGrammar(t, "S -> 'a' S | ()")
	if !ok.Satisfiable() {
		t.Error("satisfiable grammar reported empty")
	}
	// S only derives via itself: unproductive.
	empty := mustGrammar(t, "S -> 'a' S")
	if empty.Satisfiable() {
		t.Error("unproductive grammar reported satisfiable")
	}
}

func TestNonEmpty(t *testing.T) {
	g := mustGrammar(t, `
S -> 'a' S 'a' | >x 'b' <x
`)
	if ok, _ := g.NonEmpty([]byte("aba")); !ok {
		t.Error("aba should match")
	}
	if ok, _ := g.NonEmpty([]byte("ab")); ok {
		t.Error("ab should not match")
	}
}

func TestEvalPalindromeMarking(t *testing.T) {
	// Even-length palindromes with x marking the first half — the
	// mirrored structure is not expressible by any regular spanner.
	g := mustGrammar(t, `
S -> >x M
M -> 'a' M 'a' | 'b' M 'b' | <x C
C -> ()
`)
	// Document abba: x = [1,3⟩ ("ab").
	rel, err := g.Eval([]byte("abba"), true)
	if err != nil {
		t.Fatal(err)
	}
	want := spans.NewRelation(spans.NewTuple("x", spans.S(1, 3)))
	if !rel.Equal(want) {
		t.Errorf("Eval = %v, want %v", rel, want)
	}
	rel2, _ := g.Eval([]byte("abab"), true)
	if rel2.Len() != 0 {
		t.Errorf("non-palindrome matched: %v", rel2)
	}
}
