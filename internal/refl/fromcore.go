package refl

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
)

// FromRegexCore translates a core spanner of the form
//
//	ς=_{Z1} ... ς=_{Zk} ( ⟦α⟧ )    with α a regex formula
//
// into an equivalent refl-spanner, implementing the constructive direction
// of Section 3.2 for non-overlapping, sequential selections. For every
// selection class Z, the leftmost bound variable becomes the leader: its
// content language is refined to the INTERSECTION of the content languages
// of all variables in Z (the γ-construction of the survey's β/β' example),
// and every other variable of Z re-binds a reference to the leader.
//
// Requirements (checked; an error names the violation):
//   - the selection classes are pairwise disjoint;
//   - every selected variable is bound on every match path (not under
//     alternation or optional/bounded repetition);
//   - no two variables of one class are nested inside each other (the
//     nested/overlapping selections of Section 3.2's hard examples are
//     exactly what refl-spanners cannot express).
func FromRegexCore(ast regex.Node, selections []spans.VarSet, alphabet []byte) (*Spanner, error) {
	selected := spans.NewVarSet()
	for _, z := range selections {
		if dup := selected.Intersect(z); len(dup) > 0 {
			return nil, fmt.Errorf("refl: variable %s occurs in two selection classes", dup[0])
		}
		selected = selected.Union(z)
	}
	if missing := selected.Minus(regex.Vars(ast)); len(missing) > 0 {
		return nil, fmt.Errorf("refl: selection variable %s not bound in the expression", missing[0])
	}

	info := &coreInfo{
		selected:  selected,
		contents:  map[spans.Var]regex.Node{},
		order:     nil,
		ancestors: map[spans.Var]spans.VarSet{},
	}
	if err := analyze(ast, info, nil, false); err != nil {
		return nil, err
	}

	// Determine each class's leader (leftmost in match order) and the
	// refined content automaton γ.
	leader := map[spans.Var]spans.Var{}
	gamma := map[spans.Var]*automata.NFA{}
	for _, z := range selections {
		first := ""
		for _, v := range info.order {
			if z.Contains(v) {
				first = string(v)
				break
			}
		}
		if first == "" {
			return nil, fmt.Errorf("refl: empty selection class")
		}
		for _, v := range z {
			for _, w := range z {
				if v != w && info.ancestors[v].Contains(w) {
					return nil, fmt.Errorf("refl: selection variables %s and %s are nested; not expressible as a refl-spanner", v, w)
				}
			}
		}
		var g *automata.NFA
		for _, v := range z {
			leader[v] = spans.Var(first)
			c, err := regex.Compile(info.contents[v], regex.Options{Alphabet: alphabet})
			if err != nil {
				return nil, err
			}
			if g == nil {
				g = c
			} else {
				g = automata.IntersectLanguages(g, c)
			}
		}
		gamma[spans.Var(first)] = g.Trim()
	}

	b := &coreBuilder{
		selected: selected,
		leader:   leader,
		gamma:    gamma,
		alphabet: alphabet,
	}
	nfa, err := b.build(ast)
	if err != nil {
		return nil, err
	}
	return New(nfa)
}

type coreInfo struct {
	selected  spans.VarSet
	contents  map[spans.Var]regex.Node
	order     []spans.Var // selected variables in match (document) order
	ancestors map[spans.Var]spans.VarSet
}

// analyze records content expressions, binding order, and ancestor
// relations of the selected variables, and rejects structures where a
// selected variable may be skipped or repeated.
func analyze(n regex.Node, info *coreInfo, enclosing spans.VarSet, underOpt bool) error {
	switch m := n.(type) {
	case regex.Empty, regex.Lit, regex.Ref:
		return nil
	case regex.Bind:
		if info.selected.Contains(m.Var) {
			if underOpt {
				return fmt.Errorf("refl: selection variable %s bound under alternation or optional repetition", m.Var)
			}
			info.contents[m.Var] = m.Sub
			info.order = append(info.order, m.Var)
			info.ancestors[m.Var] = enclosing
		}
		return analyze(m.Sub, info, enclosing.Union(spans.NewVarSet(m.Var)), underOpt)
	case regex.Concat:
		for _, it := range m.Items {
			if err := analyze(it, info, enclosing, underOpt); err != nil {
				return err
			}
		}
		return nil
	case regex.Alt:
		for _, it := range m.Items {
			if err := analyze(it, info, enclosing, true); err != nil {
				return err
			}
		}
		return nil
	case regex.Repeat:
		return analyze(m.Sub, info, enclosing, underOpt || m.Min == 0)
	}
	return fmt.Errorf("refl: unsupported node %T", n)
}

type coreBuilder struct {
	selected spans.VarSet
	leader   map[spans.Var]spans.Var
	gamma    map[spans.Var]*automata.NFA
	alphabet []byte
}

// build mirrors the regex compiler but substitutes refined content for
// leaders and references for followers.
func (b *coreBuilder) build(n regex.Node) (*automata.NFA, error) {
	if !containsSelected(n, b.selected) {
		return regex.Compile(n, regex.Options{Alphabet: b.alphabet})
	}
	switch m := n.(type) {
	case regex.Bind:
		if b.selected.Contains(m.Var) {
			if g, isLeader := b.gamma[m.Var]; isLeader {
				return wrapMarkers(g, m.Var), nil
			}
			// Follower: bind a reference to the leader.
			out := automata.NewNFA(spans.NewVarSet(m.Var, b.leader[m.Var]))
			mid := out.AddState()
			refEnd := out.AddState()
			end := out.AddState()
			out.AddMarker(out.Start, automata.Marker{Var: m.Var}, mid)
			out.AddRef(mid, b.leader[m.Var], refEnd)
			out.AddMarker(refEnd, automata.Marker{Var: m.Var, Close: true}, end)
			out.SetFinal(end)
			return out, nil
		}
		sub, err := b.build(m.Sub)
		if err != nil {
			return nil, err
		}
		return wrapMarkers(sub, m.Var), nil
	case regex.Concat:
		var cur *automata.NFA
		for _, it := range m.Items {
			f, err := b.build(it)
			if err != nil {
				return nil, err
			}
			if cur == nil {
				cur = f
			} else {
				cur = concatKeepRefs(cur, f)
			}
		}
		return cur, nil
	case regex.Alt:
		var cur *automata.NFA
		for _, it := range m.Items {
			f, err := b.build(it)
			if err != nil {
				return nil, err
			}
			if cur == nil {
				cur = f
			} else {
				cur = automata.Union(cur, f)
			}
		}
		return cur, nil
	case regex.Repeat:
		// Selected binds under repetition were rejected by analyze unless
		// Min >= 1 and Max == 1; only {1} and {1,1} reach here.
		if m.Min == 1 && m.Max == 1 {
			return b.build(m.Sub)
		}
		return nil, fmt.Errorf("refl: selection variable under repetition")
	}
	return nil, fmt.Errorf("refl: unsupported node %T", n)
}

func containsSelected(n regex.Node, selected spans.VarSet) bool {
	return len(regex.Vars(n).Intersect(selected)) > 0
}

// wrapMarkers surrounds an automaton with v▷ ... ◁v.
func wrapMarkers(a *automata.NFA, v spans.Var) *automata.NFA {
	out := automata.NewNFA(a.Vars.Union(spans.NewVarSet(v)))
	base := out.NumStates()
	for range a.Final {
		out.AddState()
	}
	entry := out.AddState()
	exit := out.AddState()
	out.AddEps(out.Start, entry)
	out.AddMarker(entry, automata.Marker{Var: v}, base+a.Start)
	for q := range a.Final {
		for _, r := range a.Eps[q] {
			out.AddEps(base+q, base+r)
		}
		for c, rs := range a.Letters[q] {
			for _, r := range rs {
				out.AddLetter(base+q, c, base+r)
			}
		}
		for mk, rs := range a.Markers[q] {
			for _, r := range rs {
				out.AddMarker(base+q, mk, base+r)
			}
		}
		for rv, rs := range a.Refs[q] {
			for _, r := range rs {
				out.AddRef(base+q, rv, base+r)
			}
		}
		if a.Final[q] {
			out.AddMarker(base+q, automata.Marker{Var: v, Close: true}, exit)
		}
	}
	out.SetFinal(exit)
	return out
}

// concatKeepRefs concatenates two automata, allowing shared variables in
// the sense that b may reference variables bound in a (which plain
// automata.Concat forbids because marker sets must stay disjoint).
func concatKeepRefs(a, b *automata.NFA) *automata.NFA {
	markedA, markedB := markedVars(a), markedVars(b)
	if dup := markedA.Intersect(markedB); len(dup) > 0 {
		panic(fmt.Sprintf("refl: concat operands both bind %v", dup))
	}
	out := automata.NewNFA(a.Vars.Union(b.Vars))
	baseA := out.NumStates()
	copyInto(out, a, baseA)
	baseB := out.NumStates()
	copyInto(out, b, baseB)
	out.AddEps(out.Start, baseA+a.Start)
	for q := range a.Final {
		if a.Final[q] {
			out.AddEps(baseA+q, baseB+b.Start)
		}
	}
	for q := range b.Final {
		if b.Final[q] {
			out.SetFinal(baseB + q)
		}
	}
	return out
}

func markedVars(a *automata.NFA) spans.VarSet {
	var vs []spans.Var
	for _, tr := range a.Markers {
		for m := range tr {
			vs = append(vs, m.Var)
		}
	}
	return spans.NewVarSet(vs...)
}

func copyInto(dst, src *automata.NFA, base int) {
	for range src.Final {
		dst.AddState()
	}
	for q := range src.Final {
		for _, r := range src.Eps[q] {
			dst.AddEps(base+q, base+r)
		}
		for c, rs := range src.Letters[q] {
			for _, r := range rs {
				dst.AddLetter(base+q, c, base+r)
			}
		}
		for mk, rs := range src.Markers[q] {
			for _, r := range rs {
				dst.AddMarker(base+q, mk, base+r)
			}
		}
		for rv, rs := range src.Refs[q] {
			for _, r := range rs {
				dst.AddRef(base+q, rv, base+r)
			}
		}
	}
}
