package refl

import (
	"testing"
)

func TestContainsRefLanguagePositive(t *testing.T) {
	a := mustSpanner(t, "!x{a}b&x", "ab")
	b := mustSpanner(t, "!x{a|b}b*&x", "ab")
	ok, err := ContainsRefLanguage(a, b)
	if err != nil || !ok {
		t.Errorf("ContainsRefLanguage = %v, %v", ok, err)
	}
	rev, err := ContainsRefLanguage(b, a)
	if err != nil || rev {
		t.Errorf("reverse containment = %v, %v", rev, err)
	}
}

func TestContainsRefLanguageSoundness(t *testing.T) {
	// L(a) ⊆ L(b) must imply spanner containment on sample documents.
	a := mustSpanner(t, "!x{ab}c&x", "abc")
	b := mustSpanner(t, "!x{(a|b)+}c&x", "abc")
	ok, err := ContainsRefLanguage(a, b)
	if err != nil || !ok {
		t.Fatalf("containment = %v, %v", ok, err)
	}
	for _, doc := range []string{"abcab", "acbca", "abcba", "bcb"} {
		ra := a.Eval([]byte(doc), true)
		rb := b.Eval([]byte(doc), true)
		for _, tup := range ra.Tuples() {
			if !rb.Contains(tup) {
				t.Errorf("doc %q: tuple %v of a missing from b", doc, tup)
			}
		}
	}
}

func TestEquivalentRefLanguage(t *testing.T) {
	a := mustSpanner(t, "!x{a|b}&x", "ab")
	b := mustSpanner(t, "!x{b|a}&x", "ab")
	ok, err := EquivalentRefLanguage(a, b)
	if err != nil || !ok {
		t.Errorf("EquivalentRefLanguage = %v, %v", ok, err)
	}
	c := mustSpanner(t, "!x{a}&x", "ab")
	if ok, _ := EquivalentRefLanguage(a, c); ok {
		t.Error("distinct ref-languages reported equivalent")
	}
}

func TestContainsRefLanguageIncompleteness(t *testing.T) {
	// Documented incompleteness: the same SPANNER via syntactically
	// different ref-words. a writes the copy explicitly, b uses a
	// reference; the ref-languages differ even though the spanners agree
	// on every document where... here: x over single letter 'a', copy
	// "aa" spelled out vs via &x.
	a := mustSpanner(t, "!x{a}a", "a")
	b := mustSpanner(t, "!x{a}&x", "a")
	// Same spanner on all docs:
	for _, doc := range []string{"", "a", "aa", "aaa"} {
		if !a.Eval([]byte(doc), true).Equal(b.Eval([]byte(doc), true)) {
			t.Fatalf("premise broken on %q", doc)
		}
	}
	ok, err := ContainsRefLanguage(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Log("note: ref-language containment held here; incompleteness not witnessed by this pair")
	} else {
		t.Log("incompleteness witnessed: equal spanners, incomparable ref-languages")
	}
}
