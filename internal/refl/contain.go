package refl

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// Containment for refl-spanners. Section 3.3 of the survey: Containment
// is undecidable-looking in general but decidable for refl-spanners in
// which every reference is extracted by its own private extraction
// variable. The procedure here compares the two REF-LANGUAGES as regular
// languages, treating each reference symbol as a private letter:
//
//   - it is always SOUND: L(a) ⊆ L(b) as ref-languages implies
//     ⟦a⟧(D) ⊆ ⟦b⟧(D) for every document (dereferencing is a function of
//     the ref-word);
//   - under the survey's restriction it is also complete, because the
//     private extraction variables make the ref-word of a result tuple
//     unique.
//
// A negative answer therefore means "not provably contained"; callers can
// falsify with EquivalentUpTo-style bounded search.

// ContainsRefLanguage reports whether a's ref-language is contained in
// b's. Both spanners must be over the same variable set; reference
// symbols are encoded as reserved letters, so the automata's alphabets
// must leave at least one unused byte per referenced variable.
func ContainsRefLanguage(a, b *Spanner) (bool, error) {
	ea, eb, err := encodeRefPair(a, b)
	if err != nil {
		return false, err
	}
	return automata.Contains(automata.Determinize(ea), automata.Determinize(eb)), nil
}

// EquivalentRefLanguage reports ref-language equality — sound for spanner
// equivalence, complete under the private-extraction-variable restriction.
func EquivalentRefLanguage(a, b *Spanner) (bool, error) {
	ea, eb, err := encodeRefPair(a, b)
	if err != nil {
		return false, err
	}
	return automata.Equivalent(automata.Determinize(ea), automata.Determinize(eb)), nil
}

// encodeRefPair rewrites both spanners' reference transitions into
// reserved-letter transitions using one shared encoding.
func encodeRefPair(a, b *Spanner) (*automata.NFA, *automata.NFA, error) {
	union := a.A.Vars.Union(b.A.Vars)
	used := map[byte]bool{}
	for _, c := range a.A.Alphabet() {
		used[c] = true
	}
	for _, c := range b.A.Alphabet() {
		used[c] = true
	}
	enc := map[spans.Var]byte{}
	nextFree := 0
	for _, v := range union {
		if !hasRefTo(a.A, v) && !hasRefTo(b.A, v) {
			continue
		}
		for nextFree < 256 && used[byte(nextFree)] {
			nextFree++
		}
		if nextFree == 256 {
			return nil, nil, fmt.Errorf("refl: no free byte to encode reference %s", v)
		}
		enc[v] = byte(nextFree)
		used[byte(nextFree)] = true
	}
	ea := encodeRefs(a.A, union, enc)
	eb := encodeRefs(b.A, union, enc)
	return ea, eb, nil
}

func hasRefTo(n *automata.NFA, v spans.Var) bool {
	for _, tr := range n.Refs {
		if len(tr[v]) > 0 {
			return true
		}
	}
	return false
}

// encodeRefs returns a copy of n (with Vars widened to vars) whose
// reference transitions read the encoding letters instead.
func encodeRefs(n *automata.NFA, vars spans.VarSet, enc map[spans.Var]byte) *automata.NFA {
	out := automata.NewNFA(vars)
	base := out.NumStates()
	for range n.Final {
		out.AddState()
	}
	out.AddEps(out.Start, base+n.Start)
	for q := range n.Final {
		if n.Final[q] {
			out.SetFinal(base + q)
		}
		for _, r := range n.Eps[q] {
			out.AddEps(base+q, base+r)
		}
		for c, rs := range n.Letters[q] {
			for _, r := range rs {
				out.AddLetter(base+q, c, base+r)
			}
		}
		for m, rs := range n.Markers[q] {
			for _, r := range rs {
				out.AddMarker(base+q, m, base+r)
			}
		}
		for v, rs := range n.Refs[q] {
			c, ok := enc[v]
			if !ok {
				continue
			}
			for _, r := range rs {
				out.AddLetter(base+q, c, base+r)
			}
		}
	}
	return out
}
