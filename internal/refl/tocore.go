package refl

import (
	"fmt"

	"docspanner/internal/algebra"
	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// ToCore translates a reference-bounded refl-spanner into an equivalent
// core-spanner algebra expression, following Section 3.2 of the survey:
// every reference transition is replaced by a fresh variable binding
// y▷ Σ* ◁y tied to the referenced variable by a string-equality selection
// ς=_{x,y}, and the auxiliary variables are projected away. Since a run
// may or may not traverse each reference transition, the construction
// takes the union over the subsets of reference transitions (each branch
// keeps exactly the transitions of its subset); reference-boundedness
// guarantees every run uses each kept transition at most once.
//
// The translation is exponential in the number of reference transitions —
// query complexity only, and unavoidable in this direction (Section 3.2).
// Spanners that are not reference-bounded are provably not core spanners
// (the survey cites ⟦a⁺ x▷b⁺◁x (a⁺x)*a⁺⟧, Fagin et al. Theorem 6.1), so
// ToCore reports an error for them.
func (s *Spanner) ToCore() (algebra.Expr, error) {
	if !s.ReferenceBounded() {
		return nil, fmt.Errorf("refl: spanner is not reference-bounded, hence not a core spanner")
	}
	n := s.A.Trim()
	type refEdge struct {
		p, r int
		v    spans.Var
	}
	var edges []refEdge
	for p := range n.Final {
		for v, rs := range n.Refs[p] {
			for _, r := range rs {
				edges = append(edges, refEdge{p, r, v})
			}
		}
	}
	if len(edges) == 0 {
		return algebra.Prim{A: n}, nil
	}
	if len(edges) > 16 {
		return nil, fmt.Errorf("refl: ToCore limited to 16 reference transitions (have %d)", len(edges))
	}
	alphabet := n.Alphabet()

	var branches []algebra.Expr
	for subset := 0; subset < 1<<len(edges); subset++ {
		aux := make([]spans.Var, len(edges))
		extraVars := make([]spans.Var, 0, len(edges))
		for i := range edges {
			if subset&(1<<i) != 0 {
				aux[i] = spans.Var(fmt.Sprintf("·ref%d", i))
				extraVars = append(extraVars, aux[i])
			}
		}
		branch := automata.NewNFA(n.Vars.Union(spans.NewVarSet(extraVars...)))
		base := branch.NumStates()
		for range n.Final {
			branch.AddState()
		}
		branch.AddEps(branch.Start, base+n.Start)
		for q := range n.Final {
			if n.Final[q] {
				branch.SetFinal(base + q)
			}
			for _, r := range n.Eps[q] {
				branch.AddEps(base+q, base+r)
			}
			for b, rs := range n.Letters[q] {
				for _, r := range rs {
					branch.AddLetter(base+q, b, base+r)
				}
			}
			for m, rs := range n.Markers[q] {
				for _, r := range rs {
					branch.AddMarker(base+q, m, base+r)
				}
			}
		}
		for i, e := range edges {
			if subset&(1<<i) == 0 {
				continue
			}
			y := aux[i]
			loop := branch.AddState()
			branch.AddMarker(base+e.p, automata.Marker{Var: y}, loop)
			for _, b := range alphabet {
				branch.AddLetter(loop, b, loop)
			}
			branch.AddMarker(loop, automata.Marker{Var: y, Close: true}, base+e.r)
		}
		var expr algebra.Expr = algebra.Prim{A: branch}
		for i, e := range edges {
			if subset&(1<<i) != 0 {
				expr = algebra.SelectEq{Sub: expr, Z: spans.NewVarSet(e.v, aux[i])}
			}
		}
		branches = append(branches, expr)
	}
	union := branches[0]
	for _, b := range branches[1:] {
		union = algebra.Union{L: union, R: b}
	}
	return algebra.Project{Sub: union, Keep: n.Vars}, nil
}
