package refl

import (
	"strings"
	"testing"

	"docspanner/internal/algebra"
	"docspanner/internal/regex"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

func mustSpanner(t *testing.T, src string, alphabet string) *Spanner {
	t.Helper()
	n, err := regex.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte(alphabet)})
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	s, err := New(a)
	if err != nil {
		t.Fatalf("New(%q): %v", src, err)
	}
	return s
}

func TestHasher(t *testing.T) {
	doc := []byte("abracadabra")
	h := NewHasher(doc)
	h.paranoid = true
	cases := []struct {
		i, j, l int
		want    bool
	}{
		{0, 7, 4, true},  // abra == abra
		{0, 7, 3, true},  // abr == abr
		{0, 1, 1, false}, // a vs b
		{0, 3, 1, true},  // a vs a
		{0, 0, 11, true},
		{1, 8, 3, true}, // bra == bra
		{0, 2, 4, false},
	}
	for _, c := range cases {
		if got := h.Eq(c.i, c.j, c.l); got != c.want {
			t.Errorf("Eq(%d,%d,%d) = %v, want %v", c.i, c.j, c.l, got, c.want)
		}
	}
	// Out of range.
	if h.Eq(0, 8, 4) {
		t.Error("out-of-range Eq = true")
	}
}

func TestReflEvalCopy(t *testing.T) {
	// ⟦!x{.*}&x⟧ is the copy language ww with x = the first half.
	s := mustSpanner(t, "!x{(a|b)*}&x", "ab")
	got := s.Eval([]byte("abab"), true)
	want := spans.NewRelation(spans.NewTuple("x", spans.S(1, 3)))
	if !got.Equal(want) {
		t.Errorf("Eval = %v, want %v", got, want)
	}
	if s.Eval([]byte("aba"), true).Len() != 0 {
		t.Error("non-square document matched")
	}
	// Empty document: x = ε works.
	if s.Eval(nil, true).Len() != 1 {
		t.Error("empty document should match with x = ε")
	}
}

func TestReflEvalPaperExample(t *testing.T) {
	// α' from (3): a b* !x{(a|b)*} (b|c)* !y{&x} b*  — y must repeat x.
	s := mustSpanner(t, "ab*!x{(a|b)*}(b|c)*!y{&x}b*", "abc")
	doc := []byte("abbacabb")
	got := s.Eval(doc, true)
	// Expect x=ab at [3,5)... let's check a known tuple: a b b a c a b b
	// x = "ab"? positions: a(1) b(2) b(3) a(4) c(5) a(6) b(7) b(8).
	// Run: a, b*=bb? then x at [4,5)="a", (b|c)*="c", y=&x="a" at [6,7),
	// then b* = "bb". Tuple (x=[4,5), y=[6,7)).
	tup := spans.NewTuple("x", spans.S(4, 5), "y", spans.S(6, 7))
	if !got.Contains(tup) {
		t.Errorf("missing tuple %v in %v", tup, got)
	}
	// Every returned tuple must satisfy content equality.
	for _, tp := range got.Tuples() {
		cx := string(tp.Get("x").Content(doc))
		cy := string(tp.Get("y").Content(doc))
		if cx != cy {
			t.Errorf("tuple %v has x=%q y=%q", tp, cx, cy)
		}
	}
}

func TestReflVsCoreSelection(t *testing.T) {
	// The refl-spanner !x{Σ*} c !y{&x} must equal the core spanner
	// ς={x,y}(⟦!x{Σ*} c !y{Σ*}⟧) on every document.
	s := mustSpanner(t, "!x{(a|b)*}c!y{&x}", "abc")
	core := algebra.SelectEq{
		Sub: algebra.Prim{A: regex.MustCompile("!x{(a|b)*}c!y{(a|b)*}", regex.Options{Alphabet: []byte("abc")})},
		Z:   spans.NewVarSet("x", "y"),
	}
	for _, doc := range []string{"c", "acb", "abcab", "abcba", "bacba", "aacaa"} {
		got := s.Eval([]byte(doc), true)
		want := core.Eval([]byte(doc), vset.Functional)
		if !got.Equal(want) {
			t.Errorf("doc %q:\n refl %v\n core %v", doc, got, want)
		}
	}
}

func TestReflNonEmpty(t *testing.T) {
	s := mustSpanner(t, "!x{(a|b)*}&x", "ab")
	if !s.NonEmpty([]byte("abab")) {
		t.Error("square document reported empty")
	}
	if s.NonEmpty([]byte("aab")) {
		t.Error("odd document reported non-empty")
	}
}

func TestReflSatisfiableAndWitness(t *testing.T) {
	s := mustSpanner(t, "!x{ab}c&x", "abc")
	if !s.Satisfiable() {
		t.Error("not satisfiable")
	}
	doc, tup, ok := s.Witness()
	if !ok || string(doc) != "abcab" {
		t.Errorf("witness = %q, %v", doc, ok)
	}
	if tup.Get("x") != spans.S(1, 3) {
		t.Errorf("witness tuple = %v", tup)
	}
}

func TestReflModelCheck(t *testing.T) {
	s := mustSpanner(t, "!x{(a|b)+}c!y{&x}", "abc")
	doc := []byte("abcab")
	in := spans.NewTuple("x", spans.S(1, 3), "y", spans.S(4, 6))
	ok, err := s.ModelCheck(doc, in, true)
	if err != nil || !ok {
		t.Errorf("ModelCheck(in) = %v, %v", ok, err)
	}
	out := spans.NewTuple("x", spans.S(1, 2), "y", spans.S(4, 5))
	ok, err = s.ModelCheck(doc, out, true)
	if err != nil || ok {
		t.Errorf("ModelCheck(out) = %v, %v", ok, err)
	}
	// Cross-check against Eval on a larger document.
	doc2 := []byte("ababcabab")
	rel := s.Eval(doc2, true)
	for _, tp := range rel.Tuples() {
		if got, _ := s.ModelCheck(doc2, tp, true); !got {
			t.Errorf("ModelCheck rejects %v from Eval", tp)
		}
	}
	n := len(doc2)
	for xb := 1; xb <= n+1; xb++ {
		for xe := xb; xe <= n+1; xe++ {
			for yb := 1; yb <= n+1; yb++ {
				for ye := yb; ye <= n+1; ye++ {
					tp := spans.NewTuple("x", spans.S(xb, xe), "y", spans.S(yb, ye))
					got, err := s.ModelCheck(doc2, tp, true)
					if err != nil {
						t.Fatal(err)
					}
					if got != rel.Contains(tp) {
						t.Fatalf("ModelCheck(%v) = %v, Eval says %v", tp, got, rel.Contains(tp))
					}
				}
			}
		}
	}
}

func TestReflForwardReferenceRejected(t *testing.T) {
	n, err := regex.Parse("&x!x{a}")
	if err != nil {
		t.Fatal(err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(a); err == nil {
		t.Error("forward reference accepted")
	}
}

func TestReferenceBounded(t *testing.T) {
	bounded := mustSpanner(t, "!x{a+}b&x&x", "ab")
	if !bounded.ReferenceBounded() {
		t.Error("bounded spanner reported unbounded")
	}
	// The survey's unbounded example: a⁺ x▷b⁺◁x (a⁺x)* a⁺.
	unbounded := mustSpanner(t, "a+!x{b+}(a+&x)*a+", "ab")
	if unbounded.ReferenceBounded() {
		t.Error("unbounded spanner reported bounded")
	}
	if _, err := unbounded.ToCore(); err == nil {
		t.Error("ToCore accepted unbounded spanner")
	}
}

func TestToCoreEquivalence(t *testing.T) {
	cases := []struct {
		src  string
		docs []string
	}{
		{"!x{(a|b)*}c!y{&x}", []string{"c", "acb", "abcab", "bacba"}},
		{"!x{a+}&x", []string{"", "aa", "aaa", "aaaa"}},
		{"!x{a|b}(&x)?b", []string{"ab", "aab", "bbb", "abb"}},
		{"!x{a}b|!x{b}&x", []string{"ab", "bb", "ba"}},
	}
	for _, c := range cases {
		s := mustSpanner(t, c.src, "abc")
		core, err := s.ToCore()
		if err != nil {
			t.Errorf("%s: ToCore: %v", c.src, err)
			continue
		}
		for _, doc := range c.docs {
			want := s.Eval([]byte(doc), false)
			got := core.Eval([]byte(doc), vset.Schemaless)
			if !got.Equal(want) {
				t.Errorf("%s on %q:\n core %v\n refl %v", c.src, doc, got, want)
			}
		}
	}
}

func TestToCoreNoRefs(t *testing.T) {
	s := mustSpanner(t, "!x{ab}", "ab")
	core, err := s.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	if algebra.HasSelections(core) {
		t.Error("reference-free spanner translated with selections")
	}
}

func TestFromRegexCoreSimple(t *testing.T) {
	// The α/α' example of Section 3.1.
	ast, err := regex.Parse("ab*!x{(a|b)*}(b|c)*!y{(a|b)*}b*")
	if err != nil {
		t.Fatal(err)
	}
	sels := []spans.VarSet{spans.NewVarSet("x", "y")}
	s, err := FromRegexCore(ast, sels, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	core := algebra.SelectEq{
		Sub: algebra.Prim{A: regex.MustCompile("ab*!x{(a|b)*}(b|c)*!y{(a|b)*}b*", regex.Options{Alphabet: []byte("abc")})},
		Z:   spans.NewVarSet("x", "y"),
	}
	for _, doc := range []string{"a", "ab", "abba", "abcab", "aabbabb", "abbacabb"} {
		got := s.Eval([]byte(doc), true)
		want := core.Eval([]byte(doc), vset.Functional)
		if !got.Equal(want) {
			t.Errorf("doc %q:\n refl %v\n core %v", doc, got, want)
		}
	}
}

func TestFromRegexCoreBetaExample(t *testing.T) {
	// The β/β' example of Section 3.2: contents a(a|b)* and (a|b)*b must
	// be intersected, not just referenced.
	src := "ab*!x{a(a|b)*}(b|c)*!y{(a|b)*b}b*"
	ast, err := regex.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromRegexCore(ast, []spans.VarSet{spans.NewVarSet("x", "y")}, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	core := algebra.SelectEq{
		Sub: algebra.Prim{A: regex.MustCompile(src, regex.Options{Alphabet: []byte("abc")})},
		Z:   spans.NewVarSet("x", "y"),
	}
	for _, doc := range []string{"aabcab", "aabbab", "abacab", "aabab", "aabbcaabb"} {
		got := s.Eval([]byte(doc), true)
		want := core.Eval([]byte(doc), vset.Functional)
		if !got.Equal(want) {
			t.Errorf("doc %q:\n refl %v\n core %v", doc, got, want)
		}
	}
}

func TestFromRegexCoreRejections(t *testing.T) {
	parse := func(src string) regex.Node {
		n, err := regex.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	// Nested selection variables.
	if _, err := FromRegexCore(parse("!x{a!y{b}c}"), []spans.VarSet{spans.NewVarSet("x", "y")}, []byte("abc")); err == nil {
		t.Error("nested selection accepted")
	}
	// Selection variable under alternation.
	if _, err := FromRegexCore(parse("(!x{a}|b)!y{a}"), []spans.VarSet{spans.NewVarSet("x", "y")}, []byte("ab")); err == nil {
		t.Error("alternation-bound selection accepted")
	}
	// Overlapping selection classes.
	if _, err := FromRegexCore(parse("!x{a}!y{a}!z{a}"),
		[]spans.VarSet{spans.NewVarSet("x", "y"), spans.NewVarSet("y", "z")}, []byte("a")); err == nil {
		t.Error("overlapping classes accepted")
	}
	// Unbound selection variable.
	if _, err := FromRegexCore(parse("!x{a}"), []spans.VarSet{spans.NewVarSet("x", "w")}, []byte("a")); err == nil {
		t.Error("unbound selection variable accepted")
	}
}

func TestFromRegexCoreMultipleClasses(t *testing.T) {
	src := "!x{a*}b!y{a*}b!u{b*}a!v{b*}"
	ast, err := regex.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sels := []spans.VarSet{spans.NewVarSet("x", "y"), spans.NewVarSet("u", "v")}
	s, err := FromRegexCore(ast, sels, []byte("ab"))
	if err != nil {
		t.Fatal(err)
	}
	core := algebra.SelectEq{
		Sub: algebra.SelectEq{
			Sub: algebra.Prim{A: regex.MustCompile(src, regex.Options{Alphabet: []byte("ab")})},
			Z:   spans.NewVarSet("x", "y"),
		},
		Z: spans.NewVarSet("u", "v"),
	}
	for _, doc := range []string{"bba", "ababba", "aabaabbbabbb", "babbab"} {
		got := s.Eval([]byte(doc), true)
		want := core.Eval([]byte(doc), vset.Functional)
		if !got.Equal(want) {
			t.Errorf("doc %q:\n refl %v\n core %v", doc, got, want)
		}
	}
}

func TestReflEvalChainedRefs(t *testing.T) {
	// y's binding contains a reference to x; a reference to y then copies
	// the dereferenced content (the survey's chained-substitution idea).
	s := mustSpanner(t, "!x{a+}!y{b&x}c&y", "abc")
	doc := []byte("abacba")
	got := s.Eval(doc, true)
	// x="a"=[1,2), y="ba"=[2,4), then c, then &y="ba" at [5,7).
	want := spans.NewRelation(spans.NewTuple("x", spans.S(1, 2), "y", spans.S(2, 4)))
	if !got.Equal(want) {
		t.Errorf("Eval = %v, want %v", got, want)
	}
}

func TestBackwardOnlyDiagnostic(t *testing.T) {
	n, err := regex.Parse("!x{a&y}!y{b}")
	if err != nil {
		t.Fatal(err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte("ab")})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(a)
	if err == nil || !strings.Contains(err.Error(), "forward") {
		t.Errorf("expected forward-reference error, got %v", err)
	}
}

func TestSpannerVarsAndNaiveEq(t *testing.T) {
	s := mustSpanner(t, "!x{a+}&x", "ab")
	if !s.Vars().Equal(spans.NewVarSet("x")) {
		t.Errorf("Vars = %v", s.Vars())
	}
	// Naive comparison path agrees with hashed on Eval.
	doc := []byte("aaaa")
	hashed := s.Eval(doc, true)
	s.NaiveCompare = true
	naive := s.Eval(doc, true)
	s.NaiveCompare = false
	if !hashed.Equal(naive) {
		t.Errorf("naive %v != hashed %v", naive, hashed)
	}
}

func TestWitnessUnsatisfiable(t *testing.T) {
	// A ref spanner whose automaton is empty: give it an unreachable final.
	n, err := regex.Parse("!x{a}&x")
	if err != nil {
		t.Fatal(err)
	}
	a, err := regex.Compile(n, regex.Options{Alphabet: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	for q := range a.Final {
		a.Final[q] = false // no accepting state
	}
	s, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.Satisfiable() {
		t.Error("unsatisfiable spanner reported satisfiable")
	}
	if _, _, ok := s.Witness(); ok {
		t.Error("witness for unsatisfiable spanner")
	}
}
