// Package refl implements the refl-spanners of Schmid and Schweikardt
// (ICDT 2021), surveyed in Section 3 of their PODS 2022 overview:
// spanners defined by regular ref-languages, in which string-equality is
// expressed by reference symbols x inside the regular language instead of
// by algebraic selections. Refl-spanners sit strictly between regular and
// core spanners: ModelChecking and Satisfiability stay tractable (the
// former in linear time with a rolling-hash string structure), while
// NonEmptiness is NP-hard, matching the survey's account (Section 3.3).
//
// Reference transitions are *backward* references: on every accepting
// path a reference to x fires only after ◁x, as in all examples of the
// survey and in classical regex backreference semantics.
package refl

import (
	"fmt"

	"docspanner/internal/automata"
	"docspanner/internal/spans"
)

// Spanner is a refl-spanner: an NFA over Σ ∪ markers ∪ references.
// Evaluation (Eval, Enumerate, ModelCheck, NonEmpty) allocates its search
// state per call, so a shared Spanner is safe for concurrent use as long
// as NaiveCompare is set before the instance is shared.
type Spanner struct {
	A *automata.NFA
	// NaiveCompare disables the rolling-hash string structure and
	// compares referenced factors byte by byte — the quadratic baseline
	// of Section 3.3, kept as an ablation switch for the benchmarks.
	// Configure it before sharing the spanner across goroutines.
	NaiveCompare bool
}

// New validates and wraps a ref-automaton. It checks the marker structure
// (as for vset-automata), that every referenced variable is bound, and
// that references are backward (fire only after the variable's close
// marker on every path).
func New(a *automata.NFA) (*Spanner, error) {
	if err := a.Validate(false); err != nil {
		return nil, err
	}
	trimmed := a.Trim()
	// Collect referenced variables.
	refVars := map[spans.Var]bool{}
	for _, tr := range trimmed.Refs {
		for v := range tr {
			refVars[v] = true
		}
	}
	for v := range refVars {
		if !a.Vars.Contains(v) {
			return nil, fmt.Errorf("refl: reference to unknown variable %s", v)
		}
		if err := backwardOnly(trimmed, v); err != nil {
			return nil, err
		}
	}
	return &Spanner{A: a}, nil
}

// backwardOnly checks that on every path of the trimmed automaton, a
// reference to v fires only in the "closed" phase of v's markers.
func backwardOnly(n *automata.NFA, v spans.Var) error {
	const (
		unseen = 0
		opened = 1
		closed = 2
	)
	type cfg struct{ q, phase int }
	start := cfg{n.Start, unseen}
	seen := map[cfg]bool{start: true}
	stack := []cfg{start}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push := func(q, ph int) {
			nc := cfg{q, ph}
			if !seen[nc] {
				seen[nc] = true
				stack = append(stack, nc)
			}
		}
		for _, r := range n.Eps[c.q] {
			push(r, c.phase)
		}
		for _, rs := range n.Letters[c.q] {
			for _, r := range rs {
				push(r, c.phase)
			}
		}
		for m, rs := range n.Markers[c.q] {
			ph := c.phase
			if m.Var == v {
				if m.Close {
					ph = closed
				} else {
					ph = opened
				}
			}
			for _, r := range rs {
				push(r, ph)
			}
		}
		for rv, rs := range n.Refs[c.q] {
			if rv == v && c.phase != closed {
				return fmt.Errorf("refl: reference to %s before its span is closed (forward references unsupported)", v)
			}
			for _, r := range rs {
				push(r, c.phase)
			}
		}
	}
	return nil
}

// Vars returns the spanner's variable set.
func (s *Spanner) Vars() spans.VarSet { return s.A.Vars }

// Eval computes ⟦L⟧(doc) = { st(𝔡(w)) : w ∈ L, e(𝔡(w)) = doc }: the search
// explores configurations (state, position, assignment), and a reference
// transition for x consumes the factor of doc equal to x's extracted
// content, verified in O(1) with the rolling-hash structure. NP-hard in
// general (the assignment guessing is the hardness source, Section 3.3);
// output-sensitive in practice.
func (s *Spanner) Eval(doc []byte, functional bool) *spans.Relation {
	out := spans.NewRelation()
	s.search(doc, functional, func(t spans.Tuple) bool {
		out.Add(t)
		return true
	})
	return out
}

// Enumerate streams the result tuples on doc without duplicates, calling
// f for each; the search stops as soon as f returns false. Unlike Eval it
// never materializes the full relation, so early termination (taking the
// first k tuples, or probing for non-emptiness) does only the work needed
// to produce the tuples actually delivered. Distinct search configurations
// can reach the same tuple, so duplicates are suppressed on the fly by
// canonical tuple key.
func (s *Spanner) Enumerate(doc []byte, functional bool, f func(spans.Tuple) bool) {
	seen := map[string]bool{}
	s.search(doc, functional, func(t spans.Tuple) bool {
		k := t.Key()
		if seen[k] {
			return true
		}
		seen[k] = true
		return f(t)
	})
}

// NonEmpty decides ⟦L⟧(doc) ≠ ∅ — NP-hard for refl-spanners (Section
// 3.3); implemented as the Eval search with early exit.
func (s *Spanner) NonEmpty(doc []byte) bool {
	found := false
	s.search(doc, false, func(spans.Tuple) bool {
		found = true
		return false
	})
	return found
}

// search runs the configuration search, invoking emit for every result
// tuple until emit returns false.
func (s *Spanner) search(doc []byte, functional bool, emit func(spans.Tuple) bool) {
	n := s.A
	k := len(n.Vars)
	h := s.hasher(doc)

	type cfg struct {
		q   int
		pos int
		asg string
	}
	zero := make([]byte, 8*k)
	getMark := func(asg string, idx int) int {
		off := idx * 4
		return int(asg[off]) | int(asg[off+1])<<8 | int(asg[off+2])<<16 | int(asg[off+3])<<24
	}
	setMark := func(asg string, idx, val int) string {
		b := []byte(asg)
		off := idx * 4
		b[off] = byte(val)
		b[off+1] = byte(val >> 8)
		b[off+2] = byte(val >> 16)
		b[off+3] = byte(val >> 24)
		return string(b)
	}

	start := cfg{n.Start, 0, string(zero)}
	seen := map[cfg]bool{start: true}
	stack := []cfg{start}

	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		if c.pos == len(doc) && n.Final[c.q] {
			t := make(spans.Tuple)
			valid := true
			complete := true
			for i, v := range n.Vars {
				b := getMark(c.asg, 2*i)
				e := getMark(c.asg, 2*i+1)
				switch {
				case b > 0 && e > 0:
					t[v] = spans.S(b, e)
				case b == 0 && e == 0:
					complete = false
				default:
					valid = false
				}
			}
			if valid && (!functional || complete) {
				if !emit(t) {
					return
				}
			}
		}

		push := func(nc cfg) {
			if !seen[nc] {
				seen[nc] = true
				stack = append(stack, nc)
			}
		}
		for _, r := range n.Eps[c.q] {
			push(cfg{r, c.pos, c.asg})
		}
		if c.pos < len(doc) {
			for _, r := range n.Letters[c.q][doc[c.pos]] {
				push(cfg{r, c.pos + 1, c.asg})
			}
		}
		for m, rs := range n.Markers[c.q] {
			i := n.Vars.Index(m.Var)
			if i < 0 {
				continue
			}
			var idx int
			if m.Close {
				idx = 2*i + 1
				if getMark(c.asg, 2*i) == 0 || getMark(c.asg, idx) != 0 {
					continue
				}
			} else {
				idx = 2 * i
				if getMark(c.asg, idx) != 0 {
					continue
				}
			}
			nasg := setMark(c.asg, idx, c.pos+1)
			for _, r := range rs {
				push(cfg{r, c.pos, nasg})
			}
		}
		for v, rs := range n.Refs[c.q] {
			i := n.Vars.Index(v)
			if i < 0 {
				continue
			}
			b := getMark(c.asg, 2*i)
			e := getMark(c.asg, 2*i+1)
			if b == 0 || e == 0 {
				continue // backward reference: span must be closed
			}
			l := e - b
			if c.pos+l > len(doc) || !h.Eq(b-1, c.pos, l) {
				continue
			}
			for _, r := range rs {
				push(cfg{r, c.pos + l, c.asg})
			}
		}
	}
}

// hasher returns the factor-equality structure: rolling hashes, or the
// byte-by-byte baseline under NaiveCompare.
func (s *Spanner) hasher(doc []byte) factorEq {
	if s.NaiveCompare {
		return naiveEq(doc)
	}
	return NewHasher(doc)
}

// Satisfiable decides whether some document yields a non-empty result.
// For refl-spanners this reduces to NFA non-emptiness (Section 3.3),
// because every accepted ref-word dereferences to a witness document.
func (s *Spanner) Satisfiable() bool {
	return !s.A.Empty()
}

// Witness returns a witness document and tuple for satisfiability, by
// dereferencing a shortest accepted ref-word.
func (s *Spanner) Witness() (doc []byte, t spans.Tuple, ok bool) {
	w := s.A.ShortestWitness()
	if w == nil {
		return nil, nil, false
	}
	d, err := w.Deref()
	if err != nil {
		return nil, nil, false
	}
	return d.Erase(), d.SpanTuple(), true
}

// ModelCheck decides t ∈ ⟦L⟧(doc) in time linear in |doc| (data
// complexity), following Section 3.3: the pair (doc, t) fixes the content
// of every reference, so reference transitions are checked by O(1) factor
// comparisons on the rolling-hash structure, and the remaining search is
// a product of automaton states and document positions whose assignment
// component is FIXED — no guessing, hence tractable (in contrast to core
// spanners, where the same problem is NP-hard).
func (s *Spanner) ModelCheck(doc []byte, t spans.Tuple, functional bool) (bool, error) {
	n := s.A
	for v, sp := range t {
		if !n.Vars.Contains(v) {
			return false, fmt.Errorf("refl: tuple assigns unknown variable %s", v)
		}
		if !sp.In(len(doc)) {
			return false, fmt.Errorf("refl: span %v of %s out of range", sp, v)
		}
	}
	if functional && !t.TotalOn(n.Vars) {
		return false, nil
	}
	h := s.hasher(doc)
	k := len(n.Vars)

	// The assignment is fixed: marker transitions may fire only at the
	// positions dictated by t, references only where the factor matches.
	type cfg struct {
		q    int
		pos  int
		done uint64 // bitmask over marker indices already fired
	}
	bit := func(i int, close bool) uint64 {
		b := uint(2 * i)
		if close {
			b++
		}
		return 1 << b
	}
	var fullMask uint64
	markPos := make([]int, 2*k) // required firing position (1-based), 0 if unassigned
	for i, v := range n.Vars {
		if sp, ok := t[v]; ok {
			markPos[2*i] = sp.Begin
			markPos[2*i+1] = sp.End
			fullMask |= bit(i, false) | bit(i, true)
		}
	}

	start := cfg{n.Start, 0, 0}
	seen := map[cfg]bool{start: true}
	stack := []cfg{start}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.pos == len(doc) && c.done == fullMask && n.Final[c.q] {
			return true, nil
		}
		push := func(nc cfg) {
			if !seen[nc] {
				seen[nc] = true
				stack = append(stack, nc)
			}
		}
		for _, r := range n.Eps[c.q] {
			push(cfg{r, c.pos, c.done})
		}
		if c.pos < len(doc) {
			for _, r := range n.Letters[c.q][doc[c.pos]] {
				push(cfg{r, c.pos + 1, c.done})
			}
		}
		for m, rs := range n.Markers[c.q] {
			i := n.Vars.Index(m.Var)
			if i < 0 {
				continue
			}
			b := bit(i, m.Close)
			idx := 2 * i
			if m.Close {
				idx++
			}
			if markPos[idx] == 0 || c.done&b != 0 || markPos[idx] != c.pos+1 {
				continue
			}
			if m.Close && c.done&bit(i, false) == 0 {
				continue // open must fire first
			}
			for _, r := range rs {
				push(cfg{r, c.pos, c.done | b})
			}
		}
		for v, rs := range n.Refs[c.q] {
			sp, ok := t[v]
			if !ok {
				continue
			}
			i := n.Vars.Index(v)
			if c.done&bit(i, true) == 0 {
				continue // backward reference
			}
			l := sp.Len()
			// The referenced stretch must contain no marker firing
			// strictly inside it; markers at its end points are fine
			// because they fire at boundaries.
			if c.pos+l > len(doc) || !h.Eq(sp.Begin-1, c.pos, l) {
				continue
			}
			if markerStrictlyInside(markPos, c.pos, l) {
				continue
			}
			for _, r := range rs {
				push(cfg{r, c.pos + l, c.done})
			}
		}
	}
	return false, nil
}

// markerStrictlyInside reports whether any required marker position lies
// strictly inside the stretch (pos, pos+l) (0-based letter offsets; marker
// positions are 1-based boundaries).
func markerStrictlyInside(markPos []int, pos, l int) bool {
	lo, hi := pos+1, pos+l+1 // boundary range [lo, hi], interior (lo, hi)
	for _, p := range markPos {
		if p > lo && p < hi {
			return true
		}
	}
	return false
}

// ReferenceBounded reports whether the refl-spanner is reference-bounded
// (Section 3.2): there is a k bounding the number of occurrences of every
// reference in accepted ref-words. This holds iff no reference transition
// lies on a cycle of useful states.
func (s *Spanner) ReferenceBounded() bool {
	n := s.A.Trim()
	// A ref edge p→r is on a cycle iff r can reach p.
	for p := range n.Final {
		for _, rs := range n.Refs[p] {
			for _, r := range rs {
				if reaches(n, r, p) {
					return false
				}
			}
		}
	}
	return true
}

func reaches(n *automata.NFA, from, to int) bool {
	seen := make([]bool, n.NumStates())
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if q == to {
			return true
		}
		push := func(r int) {
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
		for _, r := range n.Eps[q] {
			push(r)
		}
		for _, rs := range n.Letters[q] {
			for _, r := range rs {
				push(r)
			}
		}
		for _, rs := range n.Markers[q] {
			for _, r := range rs {
				push(r)
			}
		}
		for _, rs := range n.Refs[q] {
			for _, r := range rs {
				push(r)
			}
		}
	}
	return false
}
