package refl

import "math/bits"

// Rolling (polynomial) hashing over the document: the "standard string
// data-structure" that improves refl ModelChecking from quadratic to
// linear time (Section 3.3 of the survey). Two independent hash functions
// modulo the Mersenne prime 2^61 − 1 make accidental collisions
// negligible; FactorEq additionally verifies bytes when paranoid mode is
// on (used in tests).

const hashMod = (1 << 61) - 1

func mulmod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// Reduce modulo 2^61-1: value = hi·2^64 + lo, and 2^64 ≡ 2^3.
	res := (lo & hashMod) + (lo >> 61) + ((hi << 3) & hashMod) + (hi >> 58)
	res = (res & hashMod) + (res >> 61)
	if res >= hashMod {
		res -= hashMod
	}
	return res
}

func addmod(a, b uint64) uint64 {
	s := a + b
	if s >= hashMod {
		s -= hashMod
	}
	return s
}

func submod(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + hashMod - b
}

// factorEq answers factor-equality queries doc[i:i+l] == doc[j:j+l].
type factorEq interface {
	Eq(i, j, l int) bool
}

// naiveEq is the O(l)-per-query baseline.
type naiveEq []byte

// Eq compares the factors byte by byte.
func (d naiveEq) Eq(i, j, l int) bool {
	if i+l > len(d) || j+l > len(d) {
		return false
	}
	return string(d[i:i+l]) == string(d[j:j+l])
}

// Hasher precomputes prefix hashes of a document; Eq answers factor
// equality queries in O(1). Positions are 0-based byte offsets.
type Hasher struct {
	doc      []byte
	pre1     []uint64
	pre2     []uint64
	pow1     []uint64
	pow2     []uint64
	paranoid bool
}

const (
	hashBase1 = 1_000_003
	hashBase2 = 998_244_353
)

// NewHasher builds the prefix tables in O(|doc|).
func NewHasher(doc []byte) *Hasher {
	n := len(doc)
	h := &Hasher{
		doc:  doc,
		pre1: make([]uint64, n+1),
		pre2: make([]uint64, n+1),
		pow1: make([]uint64, n+1),
		pow2: make([]uint64, n+1),
	}
	h.pow1[0], h.pow2[0] = 1, 1
	for i := 0; i < n; i++ {
		h.pre1[i+1] = addmod(mulmod(h.pre1[i], hashBase1), uint64(doc[i])+1)
		h.pre2[i+1] = addmod(mulmod(h.pre2[i], hashBase2), uint64(doc[i])+1)
		h.pow1[i+1] = mulmod(h.pow1[i], hashBase1)
		h.pow2[i+1] = mulmod(h.pow2[i], hashBase2)
	}
	return h
}

// hash returns the two hashes of doc[i:j].
func (h *Hasher) hash(i, j int) (uint64, uint64) {
	h1 := submod(h.pre1[j], mulmod(h.pre1[i], h.pow1[j-i]))
	h2 := submod(h.pre2[j], mulmod(h.pre2[i], h.pow2[j-i]))
	return h1, h2
}

// Eq reports whether doc[i:i+l] == doc[j:j+l] (0-based offsets).
func (h *Hasher) Eq(i, j, l int) bool {
	if i == j {
		return true
	}
	if i+l > len(h.doc) || j+l > len(h.doc) {
		return false
	}
	a1, a2 := h.hash(i, i+l)
	b1, b2 := h.hash(j, j+l)
	if a1 != b1 || a2 != b2 {
		return false
	}
	if h.paranoid {
		return string(h.doc[i:i+l]) == string(h.doc[j:j+l])
	}
	return true
}
