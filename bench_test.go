// Benchmarks regenerating the experiments of EXPERIMENTS.md — one
// benchmark (family) per experiment ID. The survey being reproduced has
// no empirical tables, so each experiment measures one of its complexity
// claims; the shapes (linear/constant/logarithmic scaling, tractable vs
// intractable) are the results to compare.
package docspanner

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"docspanner/internal/algebra"
	"docspanner/internal/automata"
	"docspanner/internal/enum"
	"docspanner/internal/refl"
	"docspanner/internal/refwords"
	"docspanner/internal/regex"
	"docspanner/internal/slp"
	"docspanner/internal/slpmatch"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// ---------- workload generators ----------

// randomDoc is an incompressible-ish document over {a,b}.
func randomDoc(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	doc := make([]byte, n)
	for i := range doc {
		doc[i] = "ab"[rng.Intn(2)]
	}
	return doc
}

// periodicDoc is (ab)^{n/2}: maximally compressible.
func periodicDoc(n int) []byte {
	doc := make([]byte, n)
	for i := range doc {
		doc[i] = "ab"[i%2]
	}
	return doc
}

func compileBench(b *testing.B, pattern, alphabet string) *automata.NFA {
	b.Helper()
	ast, err := regex.Parse(pattern)
	if err != nil {
		b.Fatal(err)
	}
	nfa, err := regex.Compile(ast, regex.Options{Alphabet: []byte(alphabet)})
	if err != nil {
		b.Fatal(err)
	}
	return nfa
}

// ---------- F1: Figure 1 ----------

// BenchmarkF1Figure1SLP reconstructs the survey's Figure 1 SLP (including
// the grey CDE extension) and verifies the represented document database.
func BenchmarkF1Figure1SLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ta, tb, tc := slp.Leaf('a'), slp.Leaf('b'), slp.Leaf('c')
		e := slp.Pair(ta, tb)
		f := slp.Pair(tb, tc)
		c := slp.Pair(f, ta)
		bb := slp.Pair(e, c)
		d := slp.Pair(c, bb)
		a3 := slp.Pair(e, bb)
		a1 := slp.Pair(a3, c)
		a2 := slp.Pair(c, d)
		a4 := slp.Pair(a2, a1)
		g := slp.Pair(d, bb)
		a5 := slp.Pair(bb, g)
		if a1.Len() != 10 || a2.Len() != 11 || a3.Len() != 7 || a4.Len() != 21 || a5.Len() != 18 {
			b.Fatal("Figure 1 documents wrong")
		}
	}
}

// ---------- E1: enumeration, linear preprocessing + constant delay ----------

var e1Pattern = ".*!x{ab}.*"

func BenchmarkE1EnumPreprocessing(b *testing.B) {
	d := automata.Determinize(compileBench(b, e1Pattern, "ab"))
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16, 1 << 18} {
		doc := randomDoc(n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				enum.NewEnumerator(d, doc)
			}
			b.ReportMetric(float64(n), "doc_bytes")
		})
	}
}

func BenchmarkE1EnumDelay(b *testing.B) {
	d := automata.Determinize(compileBench(b, e1Pattern, "ab"))
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16, 1 << 18} {
		doc := randomDoc(n, 1)
		e := enum.NewEnumerator(d, doc)
		total := e.Count()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			emitted := 0
			for i := 0; i < b.N; i++ {
				e.Each(func(spans.Tuple) bool { emitted++; return true })
			}
			// Report time per tuple: the "delay" — must not grow with n.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(emitted), "ns/tuple")
			b.ReportMetric(float64(total), "tuples")
		})
	}
}

// ---------- E2: compressed enumeration ----------

func BenchmarkE2CompressedEnumPreprocess(b *testing.B) {
	// Small (7-state) and large (≥ 64-state, multi-word matrix rows)
	// automata: the large one exposes kernel regressions the small one
	// hides.
	for _, pat := range []string{e1Pattern, ".*a(a|b)(a|b)(a|b)(a|b)(a|b)!x{ab}.*"} {
		d := automata.Determinize(compileBench(b, pat, "ab"))
		for _, exp := range []int{12, 16, 20, 22} {
			n := int64(1) << exp
			root := slp.Repeat(slp.FromBytes([]byte("ab")), n/2)
			b.Run(fmt.Sprintf("repetitive/states=%d/n=2^%d", d.NumStates(), exp), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ix := slpmatch.NewIndex(d)
					ix.Warm(root)
				}
				b.ReportMetric(float64(root.Size()), "slp_nodes")
			})
		}
	}
}

func BenchmarkE2CompressedEnumDelay(b *testing.B) {
	d := automata.Determinize(compileBench(b, e1Pattern, "ab"))
	for _, exp := range []int{12, 16, 20} {
		n := int64(1) << exp
		root := slp.Repeat(slp.FromBytes([]byte("ab")), n/2)
		ix := slpmatch.NewIndex(d)
		ix.Warm(root)
		b.Run(fmt.Sprintf("n=2^%d", exp), func(b *testing.B) {
			emitted := 0
			const take = 2000
			for i := 0; i < b.N; i++ {
				k := 0
				ix.Each(root, func(spans.Tuple) bool {
					k++
					emitted++
					return k < take
				})
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(emitted), "ns/tuple")
		})
	}
}

// ---------- E3: compressed membership vs decompress-and-run ----------

func BenchmarkE3CompressedMembership(b *testing.B) {
	nfa := compileBench(b, "(ab)*", "ab")
	// Small (8-state) and large (≥ 64-state) NFAs; see E2 for rationale.
	for _, pat := range []string{"(ab)*", strings.Repeat("(a|b)", 16) + "(ab)*"} {
		big := compileBench(b, pat, "ab")
		for _, exp := range []int{12, 16, 20, 22} {
			n := int64(1) << exp
			root := slp.Repeat(slp.FromBytes([]byte("ab")), n/2)
			b.Run(fmt.Sprintf("compressed/states=%d/n=2^%d", big.NumStates(), exp), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m, err := slpmatch.NewMatcher(big)
					if err != nil {
						b.Fatal(err)
					}
					if !m.Accepts(root) {
						b.Fatal("rejected")
					}
				}
			})
		}
	}
	d := automata.Determinize(nfa)
	for _, exp := range []int{12, 16, 20, 22} {
		n := 1 << exp
		doc := periodicDoc(n)
		b.Run(fmt.Sprintf("decompressed/n=2^%d", exp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !d.AcceptsExtended(doc, nil) {
					b.Fatal("rejected")
				}
			}
		})
	}
}

// ---------- E4: ModelChecking across the three classes ----------

func BenchmarkE4ModelCheckRegular(b *testing.B) {
	nfa := compileBench(b, "!x{(a|b)*}!y{b}!z{(a|b)*}", "ab")
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		doc := randomDoc(n, 3)
		doc[n/2] = 'b'
		tup := spans.NewTuple("x", spans.S(1, n/2+1), "y", spans.S(n/2+1, n/2+2), "z", spans.S(n/2+2, n+1))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := vset.ModelCheck(nfa, doc, tup, vset.Functional)
				if err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
	}
}

func BenchmarkE4ModelCheckRefl(b *testing.B) {
	nfa := compileBench(b, "!x{(a|b)*}&x", "ab")
	rs, err := refl.New(nfa)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		half := randomDoc(n/2, 4)
		doc := append(append([]byte{}, half...), half...)
		tup := spans.NewTuple("x", spans.S(1, n/2+1))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := rs.ModelCheck(doc, tup, true)
				if err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
	}
}

// BenchmarkE4CoreNonEmptinessHard shows the NP-hard side: deciding
// whether the empty tuple is in π∅(ς=...(⟦α⟧)) embeds pattern matching
// with variables; the search grows exponentially with the variable count.
func BenchmarkE4CoreNonEmptinessHard(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		var sb strings.Builder
		vars := make([]spans.Var, k)
		for i := 0; i < k; i++ {
			fmt.Fprintf(&sb, "!v%d{(a|b)*}", i)
			vars[i] = spans.Var(fmt.Sprintf("v%d", i))
		}
		nfa := compileBench(b, sb.String(), "ab")
		var expr algebra.Expr = algebra.Prim{A: nfa}
		expr = algebra.SelectEq{Sub: expr, Z: spans.NewVarSet(vars...)}
		expr = algebra.Project{Sub: expr, Keep: nil}
		doc := bytesRepeat(randomDoc(6, 5), k) // w^k: satisfiable split exists
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if expr.Eval(doc, vset.Functional).Len() == 0 {
					b.Fatal("expected non-empty")
				}
			}
		})
	}
}

func bytesRepeat(w []byte, k int) []byte {
	out := make([]byte, 0, len(w)*k)
	for i := 0; i < k; i++ {
		out = append(out, w...)
	}
	return out
}

// ---------- E5: NonEmptiness ----------

func BenchmarkE5NonEmptinessRegular(b *testing.B) {
	nfa := compileBench(b, "!x{(a|b)*}!y{b}!z{(a|b)*}", "ab")
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		doc := randomDoc(n, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vset.NonEmpty(nfa, doc)
			}
		})
	}
}

func BenchmarkE5NonEmptinessRefl(b *testing.B) {
	// Square recognition (the copy language ww) on growing documents:
	// NP-hard in general; the configuration space grows quadratically
	// here and exponentially with more variables.
	nfa := compileBench(b, "!x{(a|b)*}&x", "ab")
	rs, err := refl.New(nfa)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{64, 256, 1024} {
		half := randomDoc(n/2, 8)
		doc := append(append([]byte{}, half...), half...)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !rs.NonEmpty(doc) {
					b.Fatal("square not found")
				}
			}
		})
	}
}

// ---------- E6: Satisfiability ----------

func BenchmarkE6SatisfiabilityRegular(b *testing.B) {
	nfa := compileBench(b, strings.Repeat("(a|b)*!q{a}", 1), "ab")
	_ = nfa
	for _, k := range []int{4, 8, 16} {
		pattern := strings.Repeat("(a|b)*", k) + "!x{a}"
		big := compileBench(b, pattern, "ab")
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !vset.Satisfiable(big) {
					b.Fatal("unsat")
				}
			}
		})
	}
}

func BenchmarkE6SatisfiabilityRefl(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		pattern := fmt.Sprintf("!x{(a|b){%d}}&x&x", k)
		nfa := compileBench(b, pattern, "ab")
		rs, err := refl.New(nfa)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !rs.Satisfiable() {
					b.Fatal("unsat")
				}
			}
		})
	}
}

// BenchmarkE6CoreIntersectionEmbedding measures the PSpace phenomenon
// behind core-spanner satisfiability: the intersection-non-emptiness of k
// languages (a^p_i)* with pairwise coprime periods p_i; the intersection
// automaton grows as the product of the periods.
func BenchmarkE6CoreIntersectionEmbedding(b *testing.B) {
	primes := []int{2, 3, 5, 7, 11}
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cur := cycleNFA(primes[0])
				for j := 1; j < k; j++ {
					cur = automata.IntersectLanguages(cur, cycleNFA(primes[j]))
				}
				if cur.Trim().Empty() {
					b.Fatal("intersection empty")
				}
			}
		})
	}
}

// cycleNFA accepts (a^p)*.
func cycleNFA(p int) *automata.NFA {
	n := automata.NewNFA(nil)
	cur := n.Start
	for i := 1; i < p; i++ {
		next := n.AddState()
		n.AddLetter(cur, 'a', next)
		cur = next
	}
	n.AddLetter(cur, 'a', n.Start)
	n.SetFinal(n.Start)
	return n
}

// ---------- E7: CDE updates ----------

func BenchmarkE7CDEUpdate(b *testing.B) {
	for _, exp := range []int{12, 16, 20, 22} {
		n := int64(1) << exp
		root := slp.Repeat(slp.FromBytes([]byte("abcd")), n/4)
		db := slp.NewDB()
		db.Add("D", root)
		expr, err := slp.ParseCDE(fmt.Sprintf("insert(delete(D,%d,%d), extract(D,1,64), %d)", n/4, n/4+999, n/2))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=2^%d", exp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Eval(expr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7RebuildBaseline is the alternative the paper argues against:
// decompress, edit the plain bytes, recompress. Linear in |D|.
func BenchmarkE7RebuildBaseline(b *testing.B) {
	for _, exp := range []int{12, 16, 20} {
		n := int64(1) << exp
		root := slp.Repeat(slp.FromBytes([]byte("abcd")), n/4)
		b.Run(fmt.Sprintf("n=2^%d", exp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plain := root.Bytes()
				edited := append(append(append([]byte{}, plain[:n/4]...), plain[:64]...), plain[n/4+1000:]...)
				slp.Balance(slp.Compress(edited))
			}
		})
	}
}

// ---------- E8: Balance ----------

func BenchmarkE8Balance(b *testing.B) {
	for _, exp := range []int{10, 14, 18} {
		n := 1 << exp
		doc := []byte(strings.Repeat("abracadabra", n/11+1))[:n]
		grammar := slp.Compress(doc)
		b.Run(fmt.Sprintf("n=2^%d(size=%d)", exp, grammar.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bal := slp.Balance(grammar)
				if !bal.StronglyBalanced() {
					b.Fatal("not balanced")
				}
			}
		})
	}
}

// ---------- E9: core-simplification ----------

func BenchmarkE9CoreSimplification(b *testing.B) {
	build := func() algebra.Expr {
		p1 := algebra.Prim{A: compileBench(b, ".*!x{a+}!y{b+}.*", "ab")}
		p2 := algebra.Prim{A: compileBench(b, ".*!y{bb}.*", "ab")}
		p3 := algebra.Prim{A: compileBench(b, "!x{a}!y{bb}.*", "ab")}
		return algebra.Project{
			Sub: algebra.SelectEq{
				Sub: algebra.Union{L: algebra.Join{L: p1, R: p2}, R: p3},
				Z:   spans.NewVarSet("y"),
			},
			Keep: spans.NewVarSet("x", "y"),
		}
	}
	expr := build()
	doc := []byte("aabbbab")
	b.Run("simplify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algebra.Simplify(expr); err != nil {
				b.Fatal(err)
			}
		}
	})
	cf, err := algebra.Simplify(expr)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("eval-normal-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cf.Eval(doc, vset.Functional)
		}
	})
	b.Run("eval-reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			expr.Eval(doc, vset.Functional)
		}
	})
}

// ---------- E10: word equations ----------

func BenchmarkE10WordEquations(b *testing.B) {
	com := algebra.Commuting("x", "y", []byte("ab"))
	cyc := algebra.CyclicShift("x", "y", []byte("ab"))
	for _, n := range []int{4, 6, 8} {
		doc := []byte(strings.Repeat("ab", n/2))
		b.Run(fmt.Sprintf("commuting/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				com.Eval(doc, vset.Functional)
			}
		})
		b.Run(fmt.Sprintf("cyclic/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cyc.Eval(doc, vset.Functional)
			}
		})
	}
}

// ---------- E11: refl ↔ core translations ----------

func BenchmarkE11ReflTranslation(b *testing.B) {
	nfa := compileBench(b, "!x{(a|b)*}c!y{&x}", "abc")
	rs, err := refl.New(nfa)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("refl-to-core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rs.ToCore(); err != nil {
				b.Fatal(err)
			}
		}
	})
	ast, err := regex.Parse("ab*!x{a(a|b)*}(b|c)*!y{(a|b)*b}b*")
	if err != nil {
		b.Fatal(err)
	}
	sels := []spans.VarSet{spans.NewVarSet("x", "y")}
	b.Run("core-to-refl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := refl.FromRegexCore(ast, sels, []byte("abc")); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------- E12: containment / equivalence ----------

func BenchmarkE12Equivalence(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		p1 := strings.Repeat("(a|b)", k) + "!x{a+}"
		p2 := strings.Repeat("(b|a)", k) + "!x{aa*}"
		n1 := compileBench(b, p1, "ab")
		n2 := compileBench(b, p2, "ab")
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !vset.Equivalent(n1, n2) {
					b.Fatal("expected equivalent")
				}
			}
		})
	}
}

// ---------- ablations ----------

// BenchmarkAblationEnumVsNaive compares the jump-pointer enumerator with
// naive BFS materialization on the same spanner and document. The naive
// search carries partial assignments through every position (quadratic
// and worse), so it only gets a small document.
func BenchmarkAblationEnumVsNaive(b *testing.B) {
	nfa := compileBench(b, ".*!x{ab}.*", "ab")
	d := automata.Determinize(nfa)
	small := periodicDoc(1 << 9)
	b.Run("enumerator/n=2^9", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := enum.NewEnumerator(d, small)
			e.Count()
		}
	})
	b.Run("naive-bfs/n=2^9", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vset.Eval(nfa, small, vset.Schemaless)
		}
	})
	big := periodicDoc(1 << 14)
	b.Run("enumerator/n=2^14", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := enum.NewEnumerator(d, big)
			e.Count()
		}
	})
}

// BenchmarkAblationReflHashVsNaive compares O(1) hashed factor equality
// with byte-by-byte comparison inside refl evaluation, on a workload
// where reference comparisons dominate: the anchored square test !x{a+}&x
// on a^n probes Θ(n) candidate lengths, each with a comparison of up to
// n/2 bytes that never mismatches early — Θ(n²) compared bytes naively,
// Θ(n) hashed.
func BenchmarkAblationReflHashVsNaive(b *testing.B) {
	nfa := compileBench(b, "!x{a+}&x", "ab")
	rs, err := refl.New(nfa)
	if err != nil {
		b.Fatal(err)
	}
	doc := []byte(strings.Repeat("a", 1<<17))
	b.Run("hashed", func(b *testing.B) {
		rs.NaiveCompare = false
		for i := 0; i < b.N; i++ {
			if rs.Eval(doc, true).Len() == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		rs.NaiveCompare = true
		for i := 0; i < b.N; i++ {
			if rs.Eval(doc, true).Len() == 0 {
				b.Fatal("no matches")
			}
		}
		rs.NaiveCompare = false
	})
}

// BenchmarkAblationFactorEq isolates the string data structure itself:
// O(1) hashed factor-equality queries against O(l) byte comparison, on
// queries that never mismatch early.
func BenchmarkAblationFactorEq(b *testing.B) {
	doc := []byte(strings.Repeat("a", 1<<20))
	h := refl.NewHasher(doc)
	for _, l := range []int{1 << 10, 1 << 14, 1 << 18} {
		b.Run(fmt.Sprintf("hashed/l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !h.Eq(0, 17, l) {
					b.Fatal("unequal")
				}
			}
		})
		b.Run(fmt.Sprintf("naive/l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if string(doc[0:l]) != string(doc[17:17+l]) {
					b.Fatal("unequal")
				}
			}
		})
	}
}

// BenchmarkAblationCompressedVsPlain pits compressed enumeration against
// plain enumeration across compressibility regimes: on repetitive data
// the compressed pipeline's preprocessing wins asymptotically; on random
// data the plain pipeline is better — the crossover the survey predicts.
func BenchmarkAblationCompressedVsPlain(b *testing.B) {
	d := automata.Determinize(compileBench(b, ".*!x{ab}.*", "ab"))
	for _, exp := range []int{14, 18} {
		n := 1 << exp
		rep := slp.Repeat(slp.FromBytes([]byte("ab")), int64(n/2))
		rnd := randomDoc(n, 13)
		rndSLP := slp.Balance(slp.Compress(rnd))
		b.Run(fmt.Sprintf("repetitive-compressed/n=2^%d", exp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix := slpmatch.NewIndex(d)
				ix.Warm(rep)
				k := 0
				ix.Each(rep, func(spans.Tuple) bool { k++; return k < 100 })
			}
		})
		b.Run(fmt.Sprintf("repetitive-plain/n=2^%d", exp), func(b *testing.B) {
			doc := periodicDoc(n)
			for i := 0; i < b.N; i++ {
				e := enum.NewEnumerator(d, doc)
				k := 0
				e.Each(func(spans.Tuple) bool { k++; return k < 100 })
			}
		})
		b.Run(fmt.Sprintf("random-compressed/n=2^%d", exp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix := slpmatch.NewIndex(d)
				ix.Warm(rndSLP)
				k := 0
				ix.Each(rndSLP, func(spans.Tuple) bool { k++; return k < 100 })
			}
		})
		b.Run(fmt.Sprintf("random-plain/n=2^%d", exp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := enum.NewEnumerator(d, rnd)
				k := 0
				e.Each(func(spans.Tuple) bool { k++; return k < 100 })
			}
		})
	}
}

// ---------- E13: exact answer counting ----------

// BenchmarkE13ExactCount measures counting without enumeration: the
// uncompressed DP is linear in the document, and the compressed counter
// is linear in the SLP — delivering astronomically large counts that
// enumeration could never produce.
func BenchmarkE13ExactCount(b *testing.B) {
	d := automata.Determinize(compileBench(b, ".*!x{(a|b)+}.*", "ab"))
	for _, exp := range []int{10, 14, 18} {
		n := 1 << exp
		doc := randomDoc(n, 21)
		b.Run(fmt.Sprintf("plain-dp/n=2^%d", exp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				enum.FastCount(d, doc)
			}
		})
	}
	for _, exp := range []int{20, 40, 60} {
		n := int64(1) << exp
		root := slp.Repeat(slp.FromBytes([]byte("ab")), n/2)
		b.Run(fmt.Sprintf("compressed/n=2^%d", exp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := slpmatch.NewCounter(d)
				if c.Count(root).Sign() <= 0 {
					b.Fatal("zero count")
				}
			}
		})
	}
}

// BenchmarkMinimize measures DEVA minimization (Moore refinement) on
// determinized spanners of growing size.
func BenchmarkMinimize(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		pattern := strings.Repeat("(a|b)", k) + "!x{a+}(!y{b+})?" + strings.Repeat("(b|a)", k)
		d := automata.Determinize(compileBench(b, pattern, "ab"))
		b.Run(fmt.Sprintf("states=%d", d.NumStates()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				automata.Minimize(d)
			}
		})
	}
}

// BenchmarkSerializeDB measures database persistence: writing stays
// proportional to the grammar even for multi-megabyte documents.
func BenchmarkSerializeDB(b *testing.B) {
	db := slp.NewDB()
	db.Add("big", slp.Repeat(slp.FromBytes([]byte("abcd")), 1<<20))
	db.Add("text", slp.Balance(slp.Compress([]byte(strings.Repeat("lorem ipsum dolor ", 512)))))
	var size int64
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			n, err := db.WriteTo(&buf)
			if err != nil {
				b.Fatal(err)
			}
			size = n
		}
		b.ReportMetric(float64(size), "bytes")
	})
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := slp.ReadDB(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMarkerOrder compares the set-based ModelChecking
// (extended representation, Section 2.2 Option 2) with the naive
// treatment of the consecutive-marker-order problem: trying every
// ordering of each boundary's marker set as a plain symbol sequence —
// factorial in the markers per boundary.
func BenchmarkAblationMarkerOrder(b *testing.B) {
	// k empty bindings at one boundary: that boundary's marker set has
	// 2k markers, and the naive variant faces up to (2k)! orderings while
	// the set-based simulation explores at most 2^2k (state, subset)
	// configurations.
	for _, k := range []int{2, 3, 4} {
		var sb strings.Builder
		sb.WriteString("a")
		for i := 0; i < k; i++ {
			fmt.Fprintf(&sb, "!v%d{()}", i)
		}
		sb.WriteString("a")
		nfa := compileBench(b, sb.String(), "ab")
		// Rejecting instance: the run fails only AFTER the marker
		// boundary, so the naive variant exhausts every ordering.
		doc := []byte("ab")
		tup := spans.Tuple{}
		for i := 0; i < k; i++ {
			tup[spans.Var(fmt.Sprintf("v%d", i))] = spans.S(2, 2)
		}
		b.Run(fmt.Sprintf("set-based/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := vset.ModelCheck(nfa, doc, tup, vset.Functional)
				if err != nil || ok {
					b.Fatal(ok, err)
				}
			}
		})
		b.Run(fmt.Sprintf("order-naive/k=%d", k), func(b *testing.B) {
			msw := refwords.FromTuple(doc, tup).ToMarkerSets()
			for i := 0; i < b.N; i++ {
				if naiveAcceptsMarked(nfa, msw) {
					b.Fatal("accepted")
				}
			}
		})
	}
}

// naiveAcceptsMarked tries every permutation of each boundary's marker
// set, checking plain symbol-sequence acceptance for each combination.
func naiveAcceptsMarked(n *automata.NFA, msw refwords.MarkerSetWord) bool {
	var try func(boundary int, states []int) bool
	step := func(states []int, advance func(q int) []int) []int {
		var out []int
		seen := map[int]bool{}
		for _, q := range states {
			for _, r := range advance(q) {
				if !seen[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
		}
		return n.EpsClosure(out)
	}
	try = func(boundary int, states []int) bool {
		if len(states) == 0 {
			return false
		}
		set := msw.Sets[boundary]
		// Enumerate permutations of the set (Heap's algorithm, small sets).
		perm := append(refwords.MarkerSet{}, set...)
		var permute func(k int) bool
		permute = func(k int) bool {
			if k == 1 || len(perm) == 0 {
				cur := states
				for _, mk := range perm {
					m := mk
					cur = step(cur, func(q int) []int { return n.Markers[q][m] })
					if len(cur) == 0 {
						return false
					}
				}
				if boundary == len(msw.Doc) {
					for _, q := range cur {
						if n.Final[q] {
							return true
						}
					}
					return false
				}
				bch := msw.Doc[boundary]
				cur = step(cur, func(q int) []int { return n.Letters[q][bch] })
				return try(boundary+1, cur)
			}
			for i := 0; i < k; i++ {
				if permute(k - 1) {
					return true
				}
				if k%2 == 0 {
					perm[i], perm[k-1] = perm[k-1], perm[i]
				} else {
					perm[0], perm[k-1] = perm[k-1], perm[0]
				}
			}
			return false
		}
		return permute(len(perm))
	}
	return try(0, n.EpsClosure([]int{n.Start}))
}

// ---------- E14: parallel evaluation ----------

// BenchmarkE14EvalDocs compares a serial loop over a document batch with
// the bounded-worker-pool EvalDocs on the same shared spanner. On a
// multi-core host the parallel variants divide the wall-clock by the
// worker count; with GOMAXPROCS=1 they show only the (small) pool
// overhead.
func BenchmarkE14EvalDocs(b *testing.B) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	const batch = 16
	docs := make([][]byte, batch)
	for i := range docs {
		docs[i] = randomDoc(1<<12, int64(30+i))
	}
	s.Eval(docs[0]) // warm the lazy determinization once for all variants
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				s.Eval(doc)
			}
		}
	})
	seen := map[int]bool{}
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("parallel/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvalDocs(context.Background(), s, docs, ParallelOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14EvalSharded compares direct evaluation of one large
// semicolon-segmented document with the split-correct sharded pipeline.
// Split-correctness is checked once up front (as CheckSplitCorrect's
// document-independence licenses), so the measured loop is pure
// shard-evaluate-shift work.
func BenchmarkE14EvalSharded(b *testing.B) {
	opts := Options{Alphabet: []byte("ab;")}
	p := MustCompile(".*!x{aa}.*", opts)
	splitter := MustCompile("(.*;)?!s{[ab]*}(;.*)?", opts)
	correct, ce, err := CheckSplitCorrect(p, splitter, "s", nil, 4)
	if err != nil || !correct {
		b.Fatal(correct, ce, err)
	}
	for _, segs := range []int{64, 512} {
		doc := []byte(strings.Repeat("abaab;", segs))
		doc = doc[:len(doc)-1]
		b.Run(fmt.Sprintf("serial/segments=%d", segs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if p.Eval(doc).Len() == 0 {
					b.Fatal("no matches")
				}
			}
		})
		seen := map[int]bool{}
		for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			if seen[w] {
				continue
			}
			seen[w] = true
			b.Run(fmt.Sprintf("sharded/segments=%d/workers=%d", segs, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rel, err := EvalSharded(context.Background(), p, splitter, "s", doc, ShardOptions{Workers: w})
					if err != nil || rel.Len() == 0 {
						b.Fatal(rel, err)
					}
				}
			})
		}
	}
}
