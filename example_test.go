package docspanner_test

import (
	"fmt"

	"docspanner"
)

// Example 1.1 of the survey: every occurrence of b splits the document
// into (x, y, z).
func Example() {
	s := docspanner.MustCompile("!x{(a|b)*}!y{b}!z{(a|b)*}", docspanner.Options{})
	doc := []byte("ababbab")
	for _, t := range s.Eval(doc).Sorted() {
		fmt.Printf("%v %v %v\n", t.Get("x"), t.Get("y"), t.Get("z"))
	}
	// Output:
	// [1,2⟩ [2,3⟩ [3,8⟩
	// [1,4⟩ [4,5⟩ [5,8⟩
	// [1,5⟩ [5,6⟩ [6,8⟩
	// [1,7⟩ [7,8⟩ [8,8⟩
}

// Key-value extraction with streaming enumeration.
func ExampleSpanner_Enumerate() {
	s := docspanner.MustCompile(`(.* )?!key{[a-z]+}=!val{\d+}( .*)?`,
		docspanner.Options{Alphabet: []byte("abcdefghijklmnopqrstuvwxyz0123456789= ")})
	doc := []byte("retries=3 timeout=250")
	s.Enumerate(doc, func(t docspanner.Tuple) bool {
		fmt.Printf("%s=%s\n", t.Get("key").Content(doc), t.Get("val").Content(doc))
		return true
	})
	// Output:
	// retries=3
	// timeout=250
}

// String-equality selection: the feature that turns regular spanners into
// core spanners.
func ExampleQuery_SelectEqual() {
	pair := docspanner.MustCompile("!x{(a|b)+},!y{(a|b)+}",
		docspanner.Options{Alphabet: []byte("ab,")})
	q := docspanner.MustQ(pair).SelectEqual("x", "y")
	doc := []byte("ab,ab")
	fmt.Println(q.Eval(doc).Len())
	doc2 := []byte("ab,ba")
	fmt.Println(q.Eval(doc2).Len())
	// Output:
	// 1
	// 0
}

// Complex document editing on compressed documents: edits cost O(log n)
// and never decompress.
func ExampleDocDB_Edit() {
	db := docspanner.NewDocDB()
	db.Add("greeting", docspanner.CompressDocument([]byte("hello world")))
	db.Add("name", docspanner.CompressDocument([]byte("spanner ")))
	d, err := db.Edit("patched", "insert(delete(greeting,7,11), extract(name,1,7), 7)")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(string(d.Bytes()))
	// Output:
	// hello spanner
}

// Refl-spanners match repeated content with references.
func ExampleCompile_references() {
	s := docspanner.MustCompile("!word{[a-z]+} &word",
		docspanner.Options{Alphabet: []byte("abcdefghijklmnopqrstuvwxyz ")})
	fmt.Println(s.IsRegular())
	fmt.Println(s.NonEmpty([]byte("duplicated duplicated")))
	fmt.Println(s.NonEmpty([]byte("two words")))
	// Output:
	// false
	// true
	// false
}

// Exact counting scales to outputs no enumeration could produce.
func ExampleIndex_ExactCount() {
	s := docspanner.MustCompile("!x{(a|b)*}!y{(a|b)*}!z{(a|b)*}",
		docspanner.Options{Alphabet: []byte("ab")})
	ix, _ := s.Index()
	doc := docspanner.RepeatDocument(docspanner.DocumentFromBytes([]byte("ab")), 1<<39)
	fmt.Println(ix.ExactCount(doc)) // (n+1)(n+2)/2 for n = 2^40
	// Output:
	// 604462909808963854794753
}
