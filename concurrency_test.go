// Race-regression tests for shared compiled artifacts. Run with
// `go test -race`: on the pre-fix code the unsynchronized dEVA
// memoization makes TestSharedSpannerConcurrentUse fail with a race
// report; with the sync.Once guard the whole file must be race-clean.
package docspanner

import (
	"fmt"
	"sync"
	"testing"
)

// runShared fans work out to 8 goroutines, each performing iters rounds,
// and reports every failure message produced.
func runShared(t *testing.T, iters int, round func(g, rep int) error) {
	t.Helper()
	const workers = 8
	errs := make(chan error, workers*iters)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < iters; rep++ {
				if err := round(g, rep); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSharedSpannerConcurrentUse(t *testing.T) {
	const pattern = "!x{(a|b)*}!y{b}!z{(a|b)*}"
	doc := []byte("ababbab")
	// Expected values come from a private instance so that the shared
	// spanner reaches the goroutines with its lazy determinization still
	// pending — the exact state in which the original race fired.
	ref := MustCompile(pattern, Options{})
	want := ref.Eval(doc)
	tup := want.Tuples()[0]

	s := MustCompile(pattern, Options{})
	runShared(t, 6, func(g, rep int) error {
		switch (g + rep) % 4 {
		case 0:
			if got := s.Eval(doc); !got.Equal(want) {
				return fmt.Errorf("Eval = %v, want %v", got, want)
			}
		case 1:
			n := 0
			s.Enumerate(doc, func(Tuple) bool { n++; return true })
			if n != want.Len() {
				return fmt.Errorf("Enumerate yielded %d tuples, want %d", n, want.Len())
			}
		case 2:
			ok, err := s.ModelCheck(doc, tup)
			if err != nil || !ok {
				return fmt.Errorf("ModelCheck = %v, %v", ok, err)
			}
		case 3:
			if !s.NonEmpty(doc) {
				return fmt.Errorf("NonEmpty = false")
			}
		}
		return nil
	})
}

func TestSharedReflSpannerConcurrentUse(t *testing.T) {
	doc := []byte("abcab")
	ref := MustCompile("!x{(a|b)*}c!y{&x}", Options{Alphabet: []byte("abc")})
	want := ref.Eval(doc)
	tup := want.Tuples()[0]

	s := MustCompile("!x{(a|b)*}c!y{&x}", Options{Alphabet: []byte("abc")})
	runShared(t, 6, func(g, rep int) error {
		switch (g + rep) % 3 {
		case 0:
			if got := s.Eval(doc); !got.Equal(want) {
				return fmt.Errorf("refl Eval = %v, want %v", got, want)
			}
		case 1:
			ok, err := s.ModelCheck(doc, tup)
			if err != nil || !ok {
				return fmt.Errorf("refl ModelCheck = %v, %v", ok, err)
			}
		case 2:
			if !s.NonEmpty(doc) {
				return fmt.Errorf("refl NonEmpty = false")
			}
		}
		return nil
	})
}

func TestSharedQueryConcurrentEval(t *testing.T) {
	doc := []byte("ab,ab")
	opts := Options{Alphabet: []byte("ab,")}
	build := func() *Query {
		pair := MustCompile("!x{(a|b)+},!y{(a|b)+}", opts)
		return MustQ(pair).SelectEqual("x", "y").Project("x")
	}
	want := build().Eval(doc)

	q := build()
	runShared(t, 6, func(g, rep int) error {
		if got := q.Eval(doc); !got.Equal(want) {
			return fmt.Errorf("Query.Eval = %v, want %v", got, want)
		}
		return nil
	})
}

func TestSharedNormalFormConcurrentEval(t *testing.T) {
	doc := []byte("ab,ab")
	opts := Options{Alphabet: []byte("ab,")}
	pair := MustCompile("!x{(a|b)+},!y{(a|b)+}", opts)
	q := MustQ(pair).SelectEqual("x", "y").Project("x")
	want := q.Eval(doc)
	nf, err := q.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	runShared(t, 6, func(g, rep int) error {
		if got := nf.Eval(doc); !got.Equal(want) {
			return fmt.Errorf("NormalForm.Eval = %v, want %v", got, want)
		}
		return nil
	})
}

// TestSharedSpannerEnumerateEarlyStop exercises concurrent early
// termination: aborted enumerations must not corrupt shared state for the
// other goroutines.
func TestSharedSpannerEnumerateEarlyStop(t *testing.T) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	doc := []byte("abababab")
	total := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")}).Count(doc)

	runShared(t, 6, func(g, rep int) error {
		stopAt := 1 + (g+rep)%3
		n := 0
		s.Enumerate(doc, func(Tuple) bool { n++; return n < stopAt })
		if n != stopAt && n != total {
			return fmt.Errorf("early-stop enumeration yielded %d tuples", n)
		}
		return nil
	})
}

// TestSharedIndexConcurrentUse shares one compressed-evaluation Index
// across 8 goroutines over several SLP-compressed documents with shared
// structure. Every goroutine must observe exactly the sequential
// results; with -race this also proves the shared node cache is
// synchronized.
func TestSharedIndexConcurrentUse(t *testing.T) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	base := CompressDocument([]byte("abab"))
	docs := make([]*Document, 5)
	for i := range docs {
		docs[i] = RepeatDocument(base, int64(30+i))
	}
	// Sequential reference from a private spanner instance.
	refIx, err := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")}).Index()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Relation, len(docs))
	wantExact := make([]string, len(docs))
	for i, d := range docs {
		want[i] = refIx.Eval(d)
		wantExact[i] = refIx.ExactCount(d).String()
	}

	ix, err := s.Index()
	if err != nil {
		t.Fatal(err)
	}
	runShared(t, 4, func(g, rep int) error {
		i := (g + rep) % len(docs)
		switch (g + rep) % 4 {
		case 0:
			if got := ix.Eval(docs[i]); !got.Equal(want[i]) {
				return fmt.Errorf("Index.Eval(doc %d) differs from sequential", i)
			}
		case 1:
			if got := ix.Count(docs[i]); got != want[i].Len() {
				return fmt.Errorf("Index.Count(doc %d) = %d, want %d", i, got, want[i].Len())
			}
		case 2:
			if !ix.NonEmpty(docs[i]) {
				return fmt.Errorf("Index.NonEmpty(doc %d) = false", i)
			}
		case 3:
			if got := ix.ExactCount(docs[i]).String(); got != wantExact[i] {
				return fmt.Errorf("Index.ExactCount(doc %d) = %s, want %s", i, got, wantExact[i])
			}
		}
		return nil
	})
}

// TestWarmDBParallelBatch drives the parallel facade end to end: WarmDB
// preprocesses a database bottom-up in parallel, then the batch entry
// points evaluate against the warmed shared cache.
func TestWarmDBParallelBatch(t *testing.T) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	db := NewDocDB()
	base := CompressDocument([]byte("abab"))
	var docs []*Document
	for i := 0; i < 4; i++ {
		d := RepeatDocument(base, int64(20+8*i))
		db.Add(fmt.Sprintf("D%d", i), d)
		docs = append(docs, d)
	}
	ix, err := s.Index()
	if err != nil {
		t.Fatal(err)
	}
	ix.WarmDB(db, 4)

	rels, err := EvalCompressedDocs(nil, ix, docs, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(docs))
	err = EnumerateCompressedDocs(nil, ix, docs, ParallelOptions{Workers: 4}, func(doc int, tu Tuple) bool {
		counts[doc]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range docs {
		want := ix.Count(d)
		if rels[i].Len() != want {
			t.Errorf("EvalCompressedDocs doc %d: %d tuples, want %d", i, rels[i].Len(), want)
		}
		if counts[i] != want {
			t.Errorf("EnumerateCompressedDocs doc %d: %d tuples, want %d", i, counts[i], want)
		}
	}
}
