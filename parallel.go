package docspanner

// Parallel evaluation engine. Two scaling axes from the survey's own
// machinery:
//
//   - batch parallelism: a compiled spanner (or query) is safe for
//     concurrent use, so a batch of documents can be evaluated by a
//     bounded worker pool (EvalDocs, EnumerateDocs) — the evaluation
//     problems are "embarrassingly parallel" across documents, in line
//     with the data-complexity landscape of Peterfreund et al.
//     ("Complexity Bounds for Relational Algebra over Document Spanners");
//   - document sharding: split-correctness (Doleschal et al., PODS 2019;
//     internal/split) says exactly when a single large document can be
//     cut into shards by a splitter spanner and evaluated shard-by-shard
//     with identical results. EvalSharded runs that pipeline with the
//     shards evaluated in parallel and the extracted spans shifted back
//     to whole-document coordinates.
//
// All entry points take a context for cancellation and return results in
// a deterministic order independent of goroutine scheduling.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"docspanner/internal/spans"
	"docspanner/internal/split"
)

// shardSpans computes the distinct spans the splitter assigns to splitVar
// on doc, in document order. It is the facade-level counterpart of
// internal/split.Splits, but runs on the spanner's constant-delay
// enumerator (linear preprocessing, memoized determinization) instead of
// the naive materializing evaluation, so shard discovery stays linear in
// |doc| + #shards even on large documents.
func shardSpans(splitter *Spanner, splitVar Var, doc []byte) []Span {
	seen := map[Span]bool{}
	var out []Span
	splitter.Enumerate(doc, func(t Tuple) bool {
		if sp, ok := t[splitVar]; ok && !seen[sp] {
			seen[sp] = true
			out = append(out, sp)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Evaluator is the evaluation interface shared by *Spanner, *Query, and
// *NormalForm: anything that materializes a span relation on a document.
// Implementations used with this package must be safe for concurrent
// Eval, which all three are.
type Evaluator interface {
	Eval(doc []byte) *Relation
}

// StreamEvaluator is the streaming counterpart of Evaluator: anything
// that enumerates result tuples on a document with early termination.
// *Spanner and *Query satisfy it (both stream through their query
// plans); implementations must be safe for concurrent Enumerate.
type StreamEvaluator interface {
	Enumerate(doc []byte, f func(t Tuple) bool)
}

// CompressedEvaluator evaluates over SLP-compressed documents without
// decompressing them wholesale: *Index (a single regular spanner) and
// *Query (a whole plan, decompressing lazily only where an operator
// needs the text) satisfy it.
type CompressedEvaluator interface {
	EvalCompressed(d *Document) *Relation
}

// CompressedStreamEvaluator streams tuples over SLP-compressed
// documents; *Index and *Query satisfy it.
type CompressedStreamEvaluator interface {
	EnumerateCompressed(d *Document, f func(t Tuple) bool)
}

// ParallelOptions configures the worker pool of the batch entry points.
type ParallelOptions struct {
	// Workers bounds the number of goroutines evaluating concurrently.
	// Values < 1 default to runtime.GOMAXPROCS(0).
	Workers int
}

// workers resolves the pool size for n jobs.
func (o ParallelOptions) workers(n int) int {
	w := o.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if n > 0 && w > n {
		w = n
	}
	return w
}

// EvalDocs evaluates ev on every document of the batch with a bounded
// worker pool and returns one relation per document, in input order
// (results[i] is the relation of docs[i], regardless of which worker
// computed it). On cancellation it stops scheduling new documents, waits
// for in-flight evaluations, and returns the context's error.
func EvalDocs(ctx context.Context, ev Evaluator, docs [][]byte, opts ParallelOptions) ([]*Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]*Relation, len(docs))
	err := runPool(ctx, len(docs), opts.workers(len(docs)), func(i int) {
		out[i] = ev.Eval(docs[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EnumerateDocs enumerates s (a spanner, query, or any other
// StreamEvaluator) on every document of the batch in parallel and
// delivers the tuples to f in deterministic order: documents in input
// order, and within each document in the evaluator's enumeration order
// (fully deterministic for regular spanners). f receives the document's
// index alongside each tuple; returning false stops the whole batch —
// workers observe the stop promptly and abandon the documents they are
// enumerating. Returns the context's error on cancellation, nil on
// completion or early stop.
func EnumerateDocs(ctx context.Context, s StreamEvaluator, docs [][]byte, opts ParallelOptions, f func(doc int, t Tuple) bool) error {
	enumerate := func(i int, yield func(Tuple) bool) {
		s.Enumerate(docs[i], yield)
	}
	return enumerateBatch(ctx, len(docs), opts, enumerate, f)
}

// tupleBufPool recycles the per-document tuple buffers of
// enumerateBatch across requests: a batch-heavy server otherwise
// allocates (and regrows) one fresh slice per document per request.
var tupleBufPool = sync.Pool{
	New: func() any {
		s := make([]Tuple, 0, 64)
		return &s
	},
}

// putTupleBuf clears the tuple references (so pooled buffers do not pin
// result tuples past delivery) and returns the buffer to the pool.
func putTupleBuf(ts []Tuple) {
	for i := range ts {
		ts[i] = nil
	}
	ts = ts[:0]
	tupleBufPool.Put(&ts)
}

// enumerateBatch is the worker-pool skeleton shared by EnumerateDocs and
// EnumerateCompressedDocs: it runs enumerate(i, yield) for every i on a
// bounded pool and delivers the collected tuples to f in input order.
// Collection buffers come from tupleBufPool and go back after delivery.
func enumerateBatch(ctx context.Context, n int, opts ParallelOptions, enumerate func(i int, yield func(Tuple) bool), f func(doc int, t Tuple) bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n == 0 {
		return ctx.Err()
	}
	var stop atomic.Bool
	var next atomic.Int64
	ready := make([]chan []Tuple, n)
	for i := range ready {
		ready[i] = make(chan []Tuple, 1)
	}
	var wg sync.WaitGroup
	for k := opts.workers(n); k > 0; k-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || stop.Load() || ctx.Err() != nil {
					return
				}
				ts := (*tupleBufPool.Get().(*[]Tuple))[:0]
				enumerate(i, func(t Tuple) bool {
					if stop.Load() {
						return false
					}
					ts = append(ts, t)
					return true
				})
				ready[i] <- ts
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var err error
deliver:
	for i := 0; i < n; i++ {
		var ts []Tuple
		select {
		case ts = <-ready[i]:
		case <-ctx.Done():
			err = ctx.Err()
			break deliver
		case <-done:
			// Workers exited early; all completed sends are buffered, so
			// either document i's tuples are already here or it was never
			// evaluated (stop or cancellation).
			select {
			case ts = <-ready[i]:
			default:
				err = ctx.Err()
				break deliver
			}
		}
		stopped := false
		for _, t := range ts {
			if !f(i, t) {
				stopped = true
				break
			}
		}
		putTupleBuf(ts)
		if stopped {
			break deliver
		}
	}
	stop.Store(true)
	<-done
	return err
}

// EvalCompressedDocs evaluates a CompressedEvaluator — an Index, or a
// Query planned over compressed documents — on a batch of SLP-compressed
// documents with a bounded worker pool and returns one relation per
// document, in input order. An Index's node cache is shared by all
// workers: SLP nodes shared between documents (or added by CDE edits)
// are processed by whichever worker reaches them first and hit the
// cache everywhere else.
func EvalCompressedDocs(ctx context.Context, ev CompressedEvaluator, docs []*Document, opts ParallelOptions) ([]*Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]*Relation, len(docs))
	err := runPool(ctx, len(docs), opts.workers(len(docs)), func(i int) {
		out[i] = ev.EvalCompressed(docs[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EnumerateCompressedDocs enumerates a CompressedStreamEvaluator on a
// batch of SLP-compressed documents in parallel, delivering tuples to f
// in deterministic order (documents in input order, tuples in the
// evaluator's enumeration order); returning false from f stops the
// batch. With an Index the shared node cache makes the per-document
// preprocessing incremental across the batch.
func EnumerateCompressedDocs(ctx context.Context, ev CompressedStreamEvaluator, docs []*Document, opts ParallelOptions, f func(doc int, t Tuple) bool) error {
	enumerate := func(i int, yield func(Tuple) bool) {
		ev.EnumerateCompressed(docs[i], yield)
	}
	return enumerateBatch(ctx, len(docs), opts, enumerate, f)
}

// ShardOptions configures EvalSharded.
type ShardOptions struct {
	// Workers bounds the number of shards evaluated concurrently.
	// Values < 1 default to runtime.GOMAXPROCS(0).
	Workers int
	// Verify decides split-correctness of (spanner, splitter) exactly —
	// via the equivalence of split.Compose's product automaton with the
	// spanner — before any shard is evaluated, and fails with an error
	// (including a counterexample document when one is found) if the
	// sharded evaluation could differ from the direct one. Requires a
	// regular spanner. When false, split-correctness is assumed: the
	// caller has either checked it once with CheckSplitCorrect or accepts
	// per-shard semantics.
	Verify bool
	// VerifyAlphabet is the alphabet for the counterexample search when
	// verification fails; it defaults to the union of the two automata's
	// alphabets.
	VerifyAlphabet []byte
	// VerifyMaxWitness bounds the counterexample search depth (default 4).
	VerifyMaxWitness int
}

// EvalSharded evaluates p on one large document by sharding: the splitter
// (a regular spanner binding splitVar, e.g. a line or record splitter)
// determines the shards, each shard's factor is evaluated in parallel as
// its own document, and the extracted spans are shifted back to
// whole-document coordinates. The result is deterministic and — whenever
// p is split-correct with respect to the splitter (ShardOptions.Verify
// decides this exactly) — equal to p.Eval(doc).
//
// p may be a refl-spanner; verification, being an equivalence check on
// automata, is only available for regular p.
func EvalSharded(ctx context.Context, p, splitter *Spanner, splitVar Var, doc []byte, opts ShardOptions) (*Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !splitter.IsRegular() {
		return nil, fmt.Errorf("docspanner: EvalSharded: splitter must be a regular spanner")
	}
	if !splitter.nfa.Vars.Contains(splitVar) {
		return nil, fmt.Errorf("docspanner: EvalSharded: splitter does not bind %s", splitVar)
	}
	if opts.Verify {
		correct, counterexample, err := CheckSplitCorrect(p, splitter, splitVar, opts.VerifyAlphabet, opts.verifyMaxWitness())
		if err != nil {
			return nil, err
		}
		if !correct {
			if counterexample != nil {
				return nil, fmt.Errorf("docspanner: EvalSharded: %q is not split-correct w.r.t. the splitter (differs on %q)", p.Pattern(), counterexample)
			}
			return nil, fmt.Errorf("docspanner: EvalSharded: %q is not split-correct w.r.t. the splitter", p.Pattern())
		}
	}
	shards := shardSpans(splitter, splitVar, doc)
	rels := make([]*Relation, len(shards))
	err := runPool(ctx, len(shards), opts.pool(len(shards)), func(i int) {
		sh := shards[i]
		shifted := spans.NewRelation()
		p.Enumerate(sh.Content(doc), func(t Tuple) bool {
			nt := make(Tuple, len(t))
			for v, sp := range t {
				nt[v] = NewSpan(sp.Begin+sh.Begin-1, sp.End+sh.Begin-1)
			}
			shifted.Add(nt)
			return true
		})
		rels[i] = shifted
	})
	if err != nil {
		return nil, err
	}
	// Merge in document order: deterministic regardless of scheduling.
	out := spans.NewRelation()
	for _, rel := range rels {
		for _, t := range rel.Tuples() {
			out.Add(t)
		}
	}
	return out, nil
}

func (o ShardOptions) pool(n int) int {
	return ParallelOptions{Workers: o.Workers}.workers(n)
}

func (o ShardOptions) verifyMaxWitness() int {
	if o.VerifyMaxWitness > 0 {
		return o.VerifyMaxWitness
	}
	return 4
}

// SplitSpans returns the shard spans the splitter extracts on doc via
// splitVar, in document order — the shards EvalSharded would evaluate.
func SplitSpans(splitter *Spanner, splitVar Var, doc []byte) ([]Span, error) {
	if !splitter.IsRegular() {
		return nil, fmt.Errorf("docspanner: SplitSpans: splitter must be a regular spanner")
	}
	if !splitter.nfa.Vars.Contains(splitVar) {
		return nil, fmt.Errorf("docspanner: SplitSpans: splitter does not bind %s", splitVar)
	}
	return shardSpans(splitter, splitVar, doc), nil
}

// CheckSplitCorrect decides split-correctness of p with respect to the
// splitter — exactly, by compiling the split-then-extract pipeline into a
// single regular spanner (internal/split.Compose) and checking spanner
// equivalence (Doleschal et al., PODS 2019; decidable for regular
// spanners, in contrast to core spanners). When the answer is negative, a
// counterexample document is searched for by bounded enumeration over
// alphabet (default: the union of the two automata's alphabets) up to
// length maxWitness. The check is independent of any document: one
// positive answer licenses EvalSharded with Verify=false forever after.
func CheckSplitCorrect(p, splitter *Spanner, splitVar Var, alphabet []byte, maxWitness int) (correct bool, counterexample []byte, err error) {
	if !p.IsRegular() {
		return false, nil, fmt.Errorf("docspanner: CheckSplitCorrect needs a regular spanner (split-correctness is undecidable beyond)")
	}
	if !splitter.IsRegular() {
		return false, nil, fmt.Errorf("docspanner: CheckSplitCorrect: splitter must be a regular spanner")
	}
	if alphabet == nil {
		alphabet = unionAlphabet(p.nfa.Alphabet(), splitter.nfa.Alphabet())
	}
	res, err := split.Correct(p.nfa, splitter.nfa, splitVar, alphabet, maxWitness)
	if err != nil {
		return false, nil, err
	}
	return res.Correct, res.Counterexample, nil
}

func unionAlphabet(a, b []byte) []byte {
	seen := [256]bool{}
	out := make([]byte, 0, len(a)+len(b))
	for _, bs := range [][]byte{a, b} {
		for _, c := range bs {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// runPool runs job(i) for i in [0,n) on w workers, respecting ctx: once
// the context is done no new jobs start, in-flight jobs finish, and the
// context's error is returned.
func runPool(ctx context.Context, n, w int, job func(i int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			job(i)
		}
		return nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				job(i)
			}
		}()
	}
	var err error
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return err
}
