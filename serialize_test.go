package docspanner

import (
	"encoding/json"
	"testing"
)

func TestSpannerSaveLoad(t *testing.T) {
	s := MustCompile("!x{(a|b)*}!y{b}!z{(a|b)*}", Options{})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadSpanner(data)
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("ababbab")
	if !back.Eval(doc).Equal(s.Eval(doc)) {
		t.Error("loaded spanner evaluates differently")
	}
	if back.Pattern() != s.Pattern() {
		t.Errorf("Pattern = %q", back.Pattern())
	}
	ok, err := Equivalent(s, back)
	if err != nil || !ok {
		t.Errorf("Equivalent = %v, %v", ok, err)
	}
}

func TestSpannerSaveLoadRefl(t *testing.T) {
	s := MustCompile("!x{(a|b)+}c!y{&x}", Options{})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadSpanner(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.IsRegular() {
		t.Error("refl spanner loaded as regular")
	}
	doc := []byte("abcab")
	if !back.Eval(doc).Equal(s.Eval(doc)) {
		t.Error("loaded refl spanner evaluates differently")
	}
}

func TestLoadSpannerErrors(t *testing.T) {
	for _, c := range []string{
		`{"version":2,"automaton":null}`,
		`{"version":1}`,
		`garbage`,
	} {
		if _, err := LoadSpanner([]byte(c)); err == nil {
			t.Errorf("LoadSpanner(%q) accepted", c)
		}
	}
}

func TestSpannerDot(t *testing.T) {
	s := MustCompile("!x{ab}", Options{})
	dot := s.Dot()
	if len(dot) == 0 || dot[0] != 'd' {
		t.Errorf("Dot = %q...", dot[:20])
	}
}

func TestTuplesIterator(t *testing.T) {
	s := MustCompile(".*!x{a}.*", Options{Alphabet: []byte("a")})
	doc := []byte("aaaaa")
	n := 0
	for t2 := range s.Tuples(doc) {
		_ = t2
		n++
		if n == 2 {
			break // early break must stop enumeration cleanly
		}
	}
	if n != 2 {
		t.Errorf("iterated %d", n)
	}
	total := 0
	for range s.Tuples(doc) {
		total++
	}
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
}
