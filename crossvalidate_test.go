package docspanner

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"docspanner/internal/algebra"
	"docspanner/internal/automata"
	"docspanner/internal/enum"
	"docspanner/internal/refwords"
	"docspanner/internal/slp"
	"docspanner/internal/slpmatch"
	"docspanner/internal/spans"
	"docspanner/internal/vset"
)

// Randomized cross-validation: generate random spanner patterns and
// documents, then check that every evaluation path in the repository
// agrees — the naive configuration search (vset.Eval), the
// constant-delay enumerator (enum), the compressed enumerator (slpmatch)
// on two different SLPs of the same document, ModelChecking on sampled
// tuples, and the core-simplification normal form for algebra wrappings.

// genPattern produces a random well-formed spanner pattern over {a,b}
// binding up to maxVars variables.
type patternGen struct {
	rng    *rand.Rand
	nextID int
}

func (g *patternGen) fresh() string {
	g.nextID++
	return fmt.Sprintf("v%d", g.nextID)
}

// gen generates an expression; depth bounds nesting, canBind controls
// whether variable bindings are allowed in this position.
func (g *patternGen) gen(depth int, canBind bool) string {
	choices := []func() string{
		func() string { return "a" },
		func() string { return "b" },
		func() string { return "(a|b)" },
		func() string { return "a*" },
		func() string { return "(ab)*" },
		func() string { return "b+" },
		func() string { return "a?" },
	}
	if depth > 0 {
		choices = append(choices,
			func() string { return g.gen(depth-1, canBind) + g.gen(depth-1, canBind) },
			func() string { return "(" + g.gen(depth-1, false) + "|" + g.gen(depth-1, false) + ")" },
			func() string { return "(" + g.gen(depth-1, false) + ")*" },
		)
		if canBind && g.nextID < 3 {
			choices = append(choices, func() string {
				return "!" + g.fresh() + "{" + g.gen(depth-1, canBind) + "}"
			})
		}
	}
	return choices[g.rng.Intn(len(choices))]()
}

func (g *patternGen) pattern() string {
	// Ensure at least one binding so the spanner is interesting.
	body := g.gen(3, true)
	if g.nextID == 0 {
		body = "!" + g.fresh() + "{" + g.gen(2, false) + "}" + body
	}
	return body
}

func randomDocOver(rng *rand.Rand, n int) []byte {
	doc := make([]byte, n)
	for i := range doc {
		doc[i] = "ab"[rng.Intn(2)]
	}
	return doc
}

func TestCrossValidateEvaluationPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(20220617))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		g := &patternGen{rng: rng}
		pattern := g.pattern()
		s, err := Compile(pattern, Options{Alphabet: []byte("ab"), Schemaless: true})
		if err != nil {
			// Generator can produce duplicate bindings via concatenation
			// of binding subtrees; those are correctly rejected.
			if strings.Contains(err.Error(), "bound twice") ||
				strings.Contains(err.Error(), "repetition") {
				continue
			}
			t.Fatalf("pattern %q: %v", pattern, err)
		}
		nfa := s.nfa
		d := automata.Determinize(nfa)
		ix := slpmatch.NewIndex(d)

		for di := 0; di < 4; di++ {
			doc := randomDocOver(rng, rng.Intn(12))

			naive := vset.Eval(nfa, doc, vset.Schemaless)
			enumerated := enum.NewEnumerator(d, doc).All()
			if !naive.Equal(enumerated) {
				t.Fatalf("pattern %q doc %q: naive %v != enum %v", pattern, doc, naive, enumerated)
			}

			plainSLP := slp.FromBytes(doc)
			compSLP := slp.Balance(slp.Compress(doc))
			if got := ix.All(plainSLP); !got.Equal(naive) {
				t.Fatalf("pattern %q doc %q: plain-SLP %v != naive %v", pattern, doc, got, naive)
			}
			if got := ix.All(compSLP); !got.Equal(naive) {
				t.Fatalf("pattern %q doc %q: compressed-SLP %v != naive %v", pattern, doc, got, naive)
			}

			// ModelChecking agrees on every member tuple and on a few
			// random non-members.
			for _, tup := range naive.Tuples() {
				ok, err := vset.ModelCheck(nfa, doc, tup, vset.Schemaless)
				if err != nil || !ok {
					t.Fatalf("pattern %q doc %q: ModelCheck rejects member %v (%v)", pattern, doc, tup, err)
				}
			}
			for probe := 0; probe < 5 && len(nfa.Vars) > 0; probe++ {
				v := nfa.Vars[rng.Intn(len(nfa.Vars))]
				b := rng.Intn(len(doc)+1) + 1
				e := b + rng.Intn(len(doc)+2-b)
				tup := spans.NewTuple(v, spans.S(b, e))
				ok, err := vset.ModelCheck(nfa, doc, tup, vset.Schemaless)
				if err != nil {
					t.Fatalf("ModelCheck error: %v", err)
				}
				if ok != naive.Contains(tup) {
					t.Fatalf("pattern %q doc %q: ModelCheck(%v)=%v but relation says %v",
						pattern, doc, tup, ok, naive.Contains(tup))
				}
			}

			// NonEmptiness agrees with the relation.
			if vset.NonEmpty(nfa, doc) != (naive.Len() > 0) {
				t.Fatalf("pattern %q doc %q: NonEmpty disagrees", pattern, doc)
			}
		}
	}
}

func TestCrossValidateAlgebraPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(99991))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	mkPrim := func() algebra.Expr {
		g := &patternGen{rng: rng}
		for {
			pattern := g.pattern()
			s, err := Compile(pattern, Options{Alphabet: []byte("ab"), Schemaless: true})
			if err == nil {
				return algebra.Prim{A: s.nfa}
			}
			g = &patternGen{rng: rng}
		}
	}
	for trial := 0; trial < trials; trial++ {
		// Random small algebra tree over random primitives.
		var build func(depth int) algebra.Expr
		build = func(depth int) algebra.Expr {
			if depth == 0 || rng.Intn(3) == 0 {
				return mkPrim()
			}
			switch rng.Intn(4) {
			case 0:
				return algebra.Union{L: build(depth - 1), R: build(depth - 1)}
			case 1:
				return algebra.Join{L: build(depth - 1), R: build(depth - 1)}
			case 2:
				sub := build(depth - 1)
				vars := sub.Vars()
				if len(vars) == 0 {
					return sub
				}
				keep := spans.NewVarSet(vars[rng.Intn(len(vars))])
				return algebra.Project{Sub: sub, Keep: keep}
			default:
				sub := build(depth - 1)
				vars := sub.Vars()
				if len(vars) < 2 {
					return sub
				}
				z := spans.NewVarSet(vars[0], vars[1])
				return algebra.SelectEq{Sub: sub, Z: z}
			}
		}
		expr := build(2)
		cf, err := algebra.Simplify(expr)
		if err != nil {
			t.Fatalf("Simplify(%s): %v", algebra.String(expr), err)
		}
		for di := 0; di < 4; di++ {
			doc := randomDocOver(rng, rng.Intn(8))
			want := expr.Eval(doc, vset.Schemaless)
			got := cf.Eval(doc, vset.Schemaless)
			if !got.Equal(want) {
				t.Fatalf("expr %s doc %q:\n normal form %v\n reference %v",
					algebra.String(expr), doc, got, want)
			}
		}
	}
}

// TestCrossValidatePlanner cross-validates the query planner: on random
// algebra trees over random primitive spanners, under both semantics,
// the planner with all rewrite passes (and with the opt-in refl
// rewrite) must produce exactly the relation of the naive bottom-up
// reference evaluation — on plain documents, via streaming enumeration,
// and through the compressed backend on two different SLPs of the same
// document. Shared plans are exercised from concurrent goroutines, so a
// -race run also proves the planner's caches are safe.
func TestCrossValidatePlanner(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	mkPrim := func() algebra.Expr {
		g := &patternGen{rng: rng}
		for {
			pattern := g.pattern()
			s, err := Compile(pattern, Options{Alphabet: []byte("ab"), Schemaless: true})
			if err == nil {
				return algebra.Prim{A: s.nfa, Src: s.ast}
			}
			g = &patternGen{rng: rng}
		}
	}
	for trial := 0; trial < trials; trial++ {
		var build func(depth int) algebra.Expr
		build = func(depth int) algebra.Expr {
			if depth == 0 || rng.Intn(3) == 0 {
				return mkPrim()
			}
			switch rng.Intn(4) {
			case 0:
				return algebra.Union{L: build(depth - 1), R: build(depth - 1)}
			case 1:
				return algebra.Join{L: build(depth - 1), R: build(depth - 1)}
			case 2:
				sub := build(depth - 1)
				vars := sub.Vars()
				if len(vars) == 0 {
					return sub
				}
				keep := spans.NewVarSet(vars[rng.Intn(len(vars))])
				return algebra.Project{Sub: sub, Keep: keep}
			default:
				sub := build(depth - 1)
				vars := sub.Vars()
				if len(vars) < 2 {
					return sub
				}
				z := spans.NewVarSet(vars[0], vars[1])
				return algebra.SelectEq{Sub: sub, Z: z}
			}
		}
		expr := build(2)
		for _, schemaless := range []bool{false, true} {
			base := &Query{expr: expr, schemaless: schemaless}
			naive := base.WithPlan(PlanOptions{DisableRewrites: true, NaiveBackend: true})
			planned := base.WithPlan(PlanOptions{})
			withRefl := base.WithPlan(PlanOptions{ReflRewrite: true})
			for di := 0; di < 3; di++ {
				doc := randomDocOver(rng, rng.Intn(10))
				want := naive.Eval(doc)
				if got := planned.Eval(doc); !got.Equal(want) {
					t.Fatalf("expr %s doc %q schemaless=%v:\n planner %v\n naive %v\nplan:\n%s",
						algebra.String(expr), doc, schemaless, got, want, planned.Explain())
				}
				if got := withRefl.Eval(doc); !got.Equal(want) {
					t.Fatalf("expr %s doc %q schemaless=%v (refl-rewrite):\n planner %v\n naive %v\nplan:\n%s",
						algebra.String(expr), doc, schemaless, got, want, withRefl.Explain())
				}
				if got := planned.Count(doc); got != want.Len() {
					t.Fatalf("expr %s doc %q schemaless=%v: Count %d, want %d",
						algebra.String(expr), doc, schemaless, got, want.Len())
				}
				streamed := NewRelation()
				planned.Enumerate(doc, func(tu Tuple) bool { streamed.Add(tu); return true })
				if !streamed.Equal(want) {
					t.Fatalf("expr %s doc %q schemaless=%v: Enumerate %v, want %v",
						algebra.String(expr), doc, schemaless, streamed, want)
				}
				for _, d := range []*Document{DocumentFromBytes(doc), CompressDocument(doc)} {
					if got := planned.EvalCompressed(d); !got.Equal(want) {
						t.Fatalf("expr %s doc %q schemaless=%v: compressed backend %v, want %v\nplan:\n%s",
							algebra.String(expr), doc, schemaless, got, want, planned.Explain())
					}
				}
				// Shared plan, concurrent evaluation (meaningful under -race).
				var wg sync.WaitGroup
				for w := 0; w < 2; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if got := planned.Eval(doc); !got.Equal(want) {
							t.Errorf("concurrent planner eval diverged on %q", doc)
						}
					}()
				}
				wg.Wait()
			}
		}
	}
}

// TestCrossValidateSubwordMarkedWords checks the declarative view of
// Section 2.1: the relation computed by evaluation coincides with the
// tuples read off the accepted subword-marked words.
func TestCrossValidateSubwordMarkedWords(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 30; trial++ {
		g := &patternGen{rng: rng}
		pattern := g.pattern()
		s, err := Compile(pattern, Options{Alphabet: []byte("ab"), Schemaless: true})
		if err != nil {
			continue
		}
		doc := randomDocOver(rng, rng.Intn(8))
		rel := vset.Eval(s.nfa, doc, vset.Schemaless)
		for _, tup := range rel.Tuples() {
			w := refwords.FromTuple(doc, tup)
			if string(w.Erase()) != string(doc) {
				t.Fatalf("e(w) != doc for %v", tup)
			}
			if !w.SpanTuple().Equal(tup) {
				t.Fatalf("st(w) != t for %v", tup)
			}
			if !vset.AcceptsMarked(s.nfa, w.ToMarkerSets()) {
				t.Fatalf("pattern %q: automaton rejects its own subword-marked word %v", pattern, w)
			}
		}
	}
}
