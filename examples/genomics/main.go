// Genomics: refl-spanners on DNA-like sequences. Tandem repeats (a factor
// immediately followed by a copy of itself, uu) are the classic
// backreference workload; the survey's refl-spanners (Section 3) express
// them with a reference symbol &x instead of an algebraic string-equality
// selection, keeping evaluation and static analysis tractable where core
// spanners are not. The example also cross-checks the refl-spanner
// against its ToCore translation (Section 3.2) and shows a context-free
// spanner finding hairpin (palindromic) structure — beyond regular.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"docspanner"
	"docspanner/internal/cfg"
	"docspanner/internal/refl"
	"docspanner/internal/regex"
	"docspanner/internal/vset"
)

func synthesizeDNA(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	bases := "acgt"
	seq := make([]byte, 0, n)
	for len(seq) < n {
		if rng.Intn(6) == 0 && len(seq) > 8 {
			// Plant a tandem repeat of a recent factor.
			l := rng.Intn(4) + 2
			start := len(seq) - l
			seq = append(seq, seq[start:]...)
			continue
		}
		seq = append(seq, bases[rng.Intn(4)])
	}
	return seq[:n]
}

func main() {
	dna := synthesizeDNA(300, 7)
	opts := docspanner.Options{Alphabet: []byte("acgt")}

	// Tandem repeats uu with |u| ≥ 2 via a refl-spanner.
	tandem := docspanner.MustCompile(`.*!x{[acgt]{2,6}}&x.*`, opts)
	fmt.Printf("sequence: %d bases\nspanner:  %s (regular: %v)\n\n",
		len(dna), tandem.Pattern(), tandem.IsRegular())

	rel := tandem.Eval(dna)
	fmt.Printf("tandem repeat anchors: %d\n", rel.Len())
	seen := map[string]bool{}
	for _, t := range rel.Sorted() {
		u := string(t.Get("x").Content(dna))
		if seen[u] || len(seen) >= 8 {
			continue
		}
		seen[u] = true
		fmt.Printf("  %q%q at %v\n", u, u, t.Get("x"))
	}

	// Cross-check: the reference-bounded refl→core translation must
	// agree with direct refl evaluation (Section 3.2).
	ast, err := regex.Parse(`.*!x{[acgt]{2,3}}&x.*`)
	if err != nil {
		panic(err)
	}
	nfa, err := regex.Compile(ast, regex.Options{Alphabet: []byte("acgt")})
	if err != nil {
		panic(err)
	}
	rs, err := refl.New(nfa)
	if err != nil {
		panic(err)
	}
	core, err := rs.ToCore()
	if err != nil {
		panic(err)
	}
	probe := dna[:60]
	if rs.Eval(probe, true).Equal(core.Eval(probe, vset.Functional)) {
		fmt.Println("\nrefl → core translation verified on a 60-base prefix ✓")
	} else {
		fmt.Println("\nrefl → core translation MISMATCH ✗")
	}

	// Hairpins: reverse-complement structure needs a context-free
	// spanner (Section 2.1's "replace regular by context-free").
	hairpin, err := cfg.Parse(`
S -> A M B
M -> >x P <x
P -> 'a' P 't' | 't' P 'a' | 'c' P 'g' | 'g' P 'c' | L
L -> 'a' | 'c' | 'g' | 't' | ()
A -> 'a' A | 'c' A | 'g' A | 't' A | ()
B -> 'a' B | 'c' B | 'g' B | 't' B | ()
`)
	if err != nil {
		panic(err)
	}
	probe2 := []byte("ggacgtaatt" + "acgt")
	hrel, err := hairpin.Eval(probe2, true)
	if err != nil {
		panic(err)
	}
	best := 0
	var bestSpan docspanner.Span
	for _, t := range hrel.Tuples() {
		if l := t.Get("x").Len(); l > best {
			best = l
			bestSpan = t.Get("x")
		}
	}
	fmt.Printf("longest hairpin in %q: %q at %v (%d candidate spans)\n",
		probe2, bestSpan.Content(probe2), bestSpan, hrel.Len())

	_ = strings.Repeat
}
