// Pipeline: an end-to-end information-extraction deployment combining
// every part of the library, in the order a production system would use
// them:
//
//  1. verify the extraction rule is SPLIT-CORRECT for the record splitter
//     (so sharded evaluation is sound);
//  2. archive the corpus SLP-compressed and query it without
//     decompression, with exact result counts;
//  3. patch the archive with CDE edits and re-query incrementally;
//  4. rank extractions with a weighted (Viterbi) spanner;
//  5. run a recursive spanlog program with stratified negation to find
//     root causes.
package main

import (
	"fmt"
	"strings"

	"docspanner"
	"docspanner/internal/automata"
	"docspanner/internal/regex"
	"docspanner/internal/spanlog"
	"docspanner/internal/split"
	"docspanner/internal/vset"
	"docspanner/internal/weighted"
)

const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789=>;- "

func compile(pattern string) *automata.NFA {
	ast, err := regex.Parse(pattern)
	if err != nil {
		panic(err)
	}
	nfa, err := regex.Compile(ast, regex.Options{Alphabet: []byte(alphabet)})
	if err != nil {
		panic(err)
	}
	return nfa
}

func main() {
	// Records separated by ';': service=status pairs plus causality edges.
	record := strings.Repeat("auth=ok;search=err;billing=ok;auth->search;", 2048)
	corpus := "shard-1;" + record

	// --- 1. split-correctness -------------------------------------------
	// The split check compares the rule against its per-record evaluation
	// over ALL documents, so both automata are compiled over the record
	// alphabet (every document must decompose into ';'-separated records).
	recAlpha := []byte("abcdefghijklmnopqrstuvwxyz=;")
	compileRec := func(pattern string) *automata.NFA {
		ast, err := regex.Parse(pattern)
		if err != nil {
			panic(err)
		}
		nfa, err := regex.Compile(ast, regex.Options{Alphabet: recAlpha})
		if err != nil {
			panic(err)
		}
		return nfa
	}
	splitter := compileRec(`(.*;)?!s{[^;]*}(;.*)?`)
	rule := compileRec(`.*!svc{[a-z]+}=!st{ok|err}.*`)
	res, err := split.Correct(rule, splitter, "s", recAlpha, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("1. extraction rule split-correct w.r.t. ';'-splitter: %v\n", res.Correct)

	crossing := compileRec(`.*!x{k;b}.*`)
	res2, _ := split.Correct(crossing, splitter, "s", []byte("kb;"), 3)
	fmt.Printf("   boundary-crossing rule rejected: %v (counterexample %q)\n",
		!res2.Correct, res2.Counterexample)

	// --- 2. compressed archive -------------------------------------------
	doc := docspanner.CompressDocument([]byte(corpus))
	fmt.Printf("\n2. archive: %d bytes in %d SLP nodes (%.0fx)\n",
		doc.Len(), doc.GrammarSize(), float64(doc.Len())/float64(doc.GrammarSize()))

	errRule := docspanner.MustCompile(`(.*;)?!svc{[a-z]+}=err(;.*)?`,
		docspanner.Options{Alphabet: []byte(alphabet)})
	ix, err := errRule.Index()
	if err != nil {
		panic(err)
	}
	ix.Warm(doc)
	fmt.Printf("   failing-service records (exact count, no enumeration): %v\n", ix.ExactCount(doc))

	// --- 3. CDE patch ------------------------------------------------------
	db := docspanner.NewDocDB()
	db.Add("day1", doc)
	db.Add("patch", docspanner.CompressDocument([]byte("gateway=err;")))
	patched, err := db.Edit("day1p", "insert(day1, patch, 9)")
	if err != nil {
		panic(err)
	}
	ix.Warm(patched)
	fmt.Printf("\n3. after CDE patch: count = %v (database %d nodes total)\n",
		ix.ExactCount(patched), db.Size())

	// --- 4. weighted ranking ----------------------------------------------
	wa, err := weighted.New[float64](weighted.ViterbiSemiring{}, rule)
	if err != nil {
		panic(err)
	}
	// Prefer extractions whose STATUS content avoids err: discount 'e'
	// inside the st binding only.
	wa.WeightLetterClassInside("st", func(b byte) bool { return b == 'e' }, 0.5)
	wrel, err := wa.Eval([]byte("auth=ok;search=err"))
	if err != nil {
		panic(err)
	}
	best, _ := weighted.Best(wrel, func(x, y float64) bool { return x < y })
	probe := []byte("auth=ok;search=err")
	fmt.Printf("\n4. highest-confidence extraction: %s=%s (weight %v) of %d candidates\n",
		best.Tuple.Get("svc").Content(probe), best.Tuple.Get("st").Content(probe),
		best.Weight, len(wrel))

	// --- 5. spanlog root causes -------------------------------------------
	prog, err := spanlog.ParseProgram(`
		edge(x, y) :- "(.*;)?!x{[a-z]+}->!y{[a-z]+}(;.*)?"(x, y).
		failing(x) :- "(.*;)?!x{[a-z]+}=err(;.*)?"(x).
		# f is blamed when a failing service u points at it (content-matched
		# across the edge and the failing records).
		blamed(f)  :- failing(f), edge(u, v), eq(f, v), failing(u2), eq(u2, u).
		root(x)    :- failing(x), !blamed(x).
	`, []byte(alphabet))
	if err != nil {
		panic(err)
	}
	sample := []byte("auth=err;search=err;auth->search")
	out, err := prog.Eval(sample)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n5. spanlog on %q:\n", sample)
	for _, f := range out.Facts("root") {
		fmt.Printf("   root cause: %s\n", f[0].Content(sample))
	}
	fmt.Printf("   (%d failing, %d causality edges, %d blamed)\n",
		out.Count("failing"), out.Count("edge"), out.Count("blamed"))

	// Bonus: difference of spanners — services failing today but not in
	// the reference snapshot.
	ref := compile(`(.*;)?!svc{auth}=err(;.*)?`)
	newFailures := vset.Difference(compile(`(.*;)?!svc{[a-z]+}=err(;.*)?`), ref)
	rel := vset.Eval(newFailures, sample, vset.Schemaless)
	fmt.Printf("\n6. new failures (spanner difference): %d tuple(s)\n", rel.Len())
	for _, t := range rel.Tuples() {
		fmt.Printf("   %s\n", t.Get("svc").Content(sample))
	}
}
