// Compressed evaluation: Section 4 of the survey end to end. A highly
// repetitive archive (rotated log shards share almost all content) is
// stored as an SLP-compressed document database, a regular spanner is
// evaluated directly on the compressed form, and the database is edited
// with CDE expressions — never decompressing, with the spanner index
// maintained incrementally across edits.
package main

import (
	"fmt"
	"strings"
	"time"

	"docspanner"
)

func main() {
	opts := docspanner.Options{Alphabet: []byte("abcdefghijklmnopqrstuvwxyz0123456789=- \n")}

	// A day of logs: the same 40-line block rotated 4096 times with a
	// unique header — extremely compressible, as the survey argues is
	// typical for sequential log files.
	block := strings.Repeat("service=auth status=ok\nservice=search status=err\n", 20)
	day := strings.Repeat(block, 4096)
	doc := docspanner.CompressDocument([]byte("day 2022-06-12\n" + day))
	fmt.Printf("document: %d bytes, SLP size %d nodes (%.1fx compression)\n",
		doc.Len(), doc.GrammarSize(), float64(doc.Len())/float64(doc.GrammarSize()))

	// Evaluate a spanner over the compressed form.
	errLines := docspanner.MustCompile(
		`(.*\n)?service=!svc{[a-z]+} status=err\n(.*\n?)?`, opts)
	ix, err := errLines.Index()
	if err != nil {
		panic(err)
	}
	start := time.Now()
	ix.Warm(doc)
	fmt.Printf("index preprocessing: %v (linear in SLP size, not in |D|)\n", time.Since(start))

	start = time.Now()
	firstK := 0
	ix.Enumerate(doc, func(t docspanner.Tuple) bool {
		firstK++
		return firstK < 10000
	})
	fmt.Printf("first %d error-line tuples enumerated in %v (O(log|D|) delay)\n",
		firstK, time.Since(start))
	fmt.Printf("spanner result non-empty: %v\n\n", ix.NonEmpty(doc))

	// Complex document editing on the database (Section 4.3).
	db := docspanner.NewDocDB()
	db.Add("day1", doc)
	db.Add("patch", docspanner.CompressDocument([]byte("service=billing status=err\n")))

	start = time.Now()
	edited, err := db.Edit("day1fixed",
		fmt.Sprintf("insert(delete(day1,16,%d), patch, 16)", 16+2*len(block)-1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("CDE edit (delete 2 blocks, insert patch) in %v; new doc %d bytes, database %d nodes total\n",
		time.Since(start), edited.Len(), db.Size())

	// The same index keeps working on the edited document: only the
	// O(log n) fresh nodes need new matrices.
	start = time.Now()
	ix.Warm(edited)
	fmt.Printf("incremental index update: %v\n", time.Since(start))

	count := 0
	ix.Enumerate(edited, func(t docspanner.Tuple) bool {
		count++
		return count < 3
	})
	fmt.Printf("enumeration on edited document works: saw %d tuples\n", count)

	// Sanity: spot-check an edited byte without decompressing.
	fmt.Printf("edited[15..41] = %q\n", string(rangeOf(edited, 15, 42)))
}

func rangeOf(d *docspanner.Document, i, j int64) []byte {
	out := make([]byte, 0, j-i)
	for p := i; p < j; p++ {
		out = append(out, d.Byte(p))
	}
	return out
}
