// Log analysis: the information-extraction workload that motivates
// document spanners (the survey's framing of AQL/SystemT). A synthetic
// service log is queried with primitive spanners, the core-spanner
// algebra (join + string-equality selection finds repeated error
// messages), and a spanlog (datalog-over-spanners) program computes the
// transitive closure of request causality — a query beyond core spanners.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"docspanner"
	"docspanner/internal/regex"
	"docspanner/internal/spanlog"
	"docspanner/internal/spans"
)

const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 :=[]>-.\n"

func synthesizeLog(lines int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	services := []string{"auth", "billing", "gateway", "search"}
	messages := []string{"timeout", "retry", "ok", "cache miss", "denied"}
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		svc := services[rng.Intn(len(services))]
		msg := messages[rng.Intn(len(messages))]
		req := rng.Intn(8)
		fmt.Fprintf(&sb, "[%02d:%02d] %s req=r%d msg=%s\n",
			rng.Intn(24), rng.Intn(60), svc, req, msg)
		// Occasionally a causality edge: rX -> rY.
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&sb, "[%02d:%02d] gateway r%d->r%d\n",
				rng.Intn(24), rng.Intn(60), req, rng.Intn(8))
		}
	}
	return []byte(sb.String())
}

func main() {
	doc := synthesizeLog(40, 2022)
	opts := docspanner.Options{Alphabet: []byte(alphabet)}

	// 1. Primitive extraction: service and message per line.
	line := docspanner.MustCompile(
		`(.*\n)?\[[0-9][0-9]:[0-9][0-9]\] !svc{[a-z]+} req=!req{r[0-9]}[ ]msg=!msg{[a-z ]+}\n(.*\n?)?`,
		opts)
	fmt.Printf("log: %d bytes, %d extracted records\n", len(doc), line.Count(doc))
	shown := 0
	line.Enumerate(doc, func(t docspanner.Tuple) bool {
		fmt.Printf("  svc=%-8q req=%q msg=%q\n",
			t.Get("svc").Content(doc), t.Get("req").Content(doc), t.Get("msg").Content(doc))
		shown++
		return shown < 5
	})

	// 2. Core-spanner query: two records of the same request with the
	// same message — join two copies and select on string equality.
	a := docspanner.MustCompile(
		`(.*\n)?\[[0-9][0-9]:[0-9][0-9]\] [a-z]+ req=!r1{r[0-9]}[ ]msg=!m1{[a-z ]+}\n.*`, opts)
	b := docspanner.MustCompile(
		`.*\n\[[0-9][0-9]:[0-9][0-9]\] [a-z]+ req=!r2{r[0-9]}[ ]msg=!m2{[a-z ]+}\n(.*\n?)?`, opts)
	dup := docspanner.MustQ(a).Join(docspanner.MustQ(b)).
		SelectEqual("r1", "r2").
		SelectEqual("m1", "m2").
		Project("r1", "m1")
	fmt.Printf("\ncore query %s\n", dup)
	rel := dup.Eval(doc)
	fmt.Printf("requests with a repeated message: %d\n", rel.Len())
	for i, t := range rel.Sorted() {
		if i == 5 {
			break
		}
		fmt.Printf("  req=%q msg=%q\n", t.Get("r1").Content(doc), t.Get("m1").Content(doc))
	}

	// 3. Spanlog: transitive causality over rX->rY edges — recursion
	// takes us beyond core spanners (RGXLog, cited in the survey).
	edgeAST, err := regex.Parse(`(.*\n)?\[[0-9][0-9]:[0-9][0-9]\] gateway !x{r[0-9]}->!y{r[0-9]}\n(.*\n?)?`)
	if err != nil {
		panic(err)
	}
	edgeNFA, err := regex.Compile(edgeAST, regex.Options{Alphabet: []byte(alphabet)})
	if err != nil {
		panic(err)
	}
	prog := &spanlog.Program{Rules: []spanlog.Rule{
		{
			Head: spanlog.Atom{Pred: "edge", Args: []spans.Var{"x", "y"}},
			Body: []spanlog.Literal{{Atom: spanlog.Atom{Args: []spans.Var{"x", "y"}}, Spanner: edgeNFA}},
		},
		{
			Head: spanlog.Atom{Pred: "reach", Args: []spans.Var{"x", "y"}},
			Body: []spanlog.Literal{{Atom: spanlog.Atom{Pred: "edge", Args: []spans.Var{"x", "y"}}}},
		},
		{
			Head: spanlog.Atom{Pred: "reach", Args: []spans.Var{"x", "z"}},
			Body: []spanlog.Literal{
				{Atom: spanlog.Atom{Pred: "reach", Args: []spans.Var{"x", "y"}}},
				{Atom: spanlog.Atom{Pred: "edge", Args: []spans.Var{"y2", "z"}}},
				{Atom: spanlog.Atom{Args: []spans.Var{"y", "y2"}}, StrEq: true},
			},
		},
	}}
	res, err := prog.Eval(doc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nspanlog: %d causality edges, %d transitive reach facts\n",
		res.Count("edge"), res.Count("reach"))
}
