// Quickstart: compile a spanner, extract a span relation, and use the
// decision procedures. This reproduces Example 1.1 of Schmid and
// Schweikardt's PODS 2022 survey: on the document ababbab, the spanner
// !x{(a|b)*} !y{b} !z{(a|b)*} extracts one tuple per occurrence of b.
package main

import (
	"fmt"

	"docspanner"
)

func main() {
	doc := []byte("ababbab")
	s := docspanner.MustCompile("!x{(a|b)*}!y{b}!z{(a|b)*}", docspanner.Options{})

	fmt.Printf("document: %s\n", doc)
	fmt.Printf("spanner:  %s\n\n", s.Pattern())

	// Materialize the span relation (the table of Example 1.1).
	fmt.Println("  x      y      z        content(y)")
	for _, t := range s.Eval(doc).Sorted() {
		fmt.Printf("  %-6v %-6v %-8v %q\n",
			t.Get("x"), t.Get("y"), t.Get("z"), t.Get("y").Content(doc))
	}

	// Enumeration streams tuples with constant delay; stop early.
	fmt.Println("\nfirst two tuples via enumeration:")
	n := 0
	s.Enumerate(doc, func(t docspanner.Tuple) bool {
		fmt.Printf("  %v\n", t)
		n++
		return n < 2
	})

	// ModelChecking: is a specific tuple in the result?
	tuple := docspanner.Tuple{
		"x": docspanner.NewSpan(1, 4),
		"y": docspanner.NewSpan(4, 5),
		"z": docspanner.NewSpan(5, 8),
	}
	ok, err := s.ModelCheck(doc, tuple)
	fmt.Printf("\nModelCheck(%v) = %v (err=%v)\n", tuple, ok, err)

	// Static analysis.
	h, _ := s.Hierarchical()
	fmt.Printf("hierarchical: %v, satisfiable: %v\n", h, s.Satisfiable())
	wdoc, wtup, _ := s.Witness()
	fmt.Printf("shortest witness: %q with %v\n", wdoc, wtup)
}
