package docspanner

import (
	"fmt"

	"docspanner/internal/algebra"
	"docspanner/internal/lint"
	"docspanner/internal/vset"
)

// Query is a core-spanner algebra expression over regular spanners:
// primitive spanners combined with union, natural join, projection, and
// string-equality selection (Section 1 of the survey). Queries evaluate
// by materialization; Normalize rewrites them into the normal form of the
// core-simplification lemma (Section 2.3).
//
// A Query is immutable — the combinators (Union, Join, Project, ...)
// return new queries — and safe for concurrent use: Eval and Normalize
// keep all evaluation state on the stack and may be called from multiple
// goroutines on a shared instance.
type Query struct {
	expr       algebra.Expr
	schemaless bool
}

// Q lifts a compiled regular spanner into a query.
func Q(s *Spanner) (*Query, error) {
	if !s.IsRegular() {
		return nil, fmt.Errorf("docspanner: queries take regular spanners; translate refl-spanners with ToCore first")
	}
	return &Query{expr: algebra.Prim{A: s.nfa, Src: s.ast}, schemaless: s.schemaless}, nil
}

// MustQ is Q that panics on error.
func MustQ(s *Spanner) *Query {
	q, err := Q(s)
	if err != nil {
		panic(err)
	}
	return q
}

// Vars returns the query's visible variables.
func (q *Query) Vars() VarSet { return q.expr.Vars() }

// Union returns q ∪ other.
func (q *Query) Union(other *Query) *Query {
	return &Query{expr: algebra.Union{L: q.expr, R: other.expr}, schemaless: q.schemaless || other.schemaless}
}

// Join returns the natural join q ⋈ other.
func (q *Query) Join(other *Query) *Query {
	return &Query{expr: algebra.Join{L: q.expr, R: other.expr}, schemaless: q.schemaless || other.schemaless}
}

// Project returns π_keep(q).
func (q *Query) Project(keep ...Var) *Query {
	return &Query{expr: algebra.Project{Sub: q.expr, Keep: NewVarSet(keep...)}, schemaless: q.schemaless}
}

// SelectEqual returns ς=_z(q): tuples whose spans for all variables in z
// have the same content. This is the operation that takes queries from
// regular to core spanners (Section 2.3).
func (q *Query) SelectEqual(z ...Var) *Query {
	return &Query{expr: algebra.SelectEq{Sub: q.expr, Z: NewVarSet(z...)}, schemaless: q.schemaless}
}

// Fuse applies the column-fusion operator ⨄_{lambda→target} (Section 3.2).
func (q *Query) Fuse(target Var, lambda ...Var) *Query {
	return &Query{expr: algebra.Fuse{Sub: q.expr, Lambda: NewVarSet(lambda...), Target: target}, schemaless: q.schemaless}
}

// IsCore reports whether the query uses string-equality selection ς=
// anywhere, i.e. whether it needs the full core-spanner algebra of
// Section 2.3 rather than the selection-free (regular) fragment.
//
// Polarity convention: IsCore answers "does this query *require* the core
// class?", so true flags the computationally harder class — core-spanner
// containment and equivalence are undecidable (Section 2.4), while the
// regular fragment keeps them decidable. In the survey's terms every
// regular spanner *is* also a core spanner (the classes are nested, not
// disjoint); IsCore() == false therefore does not mean "not a core
// spanner" but "already expressible without selections". IsRegular is the
// exact negation. Contrast with Spanner.Hierarchical, where true flags
// the benign property.
func (q *Query) IsCore() bool { return algebra.HasSelections(q.expr) }

// IsRegular reports whether the query stays inside the regular-spanner
// fragment: no string-equality selection anywhere, so the whole query
// compiles to a single vset-automaton (via Normalize) with zero residual
// selections, and equivalence and containment remain decidable. It is
// defined as the exact negation of IsCore, mirroring Spanner.IsRegular.
func (q *Query) IsRegular() bool { return !q.IsCore() }

// Lint runs the spanlint static-analysis passes over the whole expression
// tree and returns the diagnostics, sorted by position path ("$" is the
// root, "$.L"/"$.R"/"$.Sub" descend into operands). An empty slice means
// the query is lint-clean. Safe to call concurrently on a shared query.
func (q *Query) Lint() []Diagnostic {
	return lint.Expr(q.expr, q.schemaless)
}

// Eval materializes the query result on doc.
func (q *Query) Eval(doc []byte) *Relation {
	sem := vset.Functional
	if q.schemaless {
		sem = vset.Schemaless
	}
	return q.expr.Eval(doc, sem)
}

// String renders the expression tree.
func (q *Query) String() string { return algebra.String(q.expr) }

// NormalForm is the core-simplification normal form
// π_Visible(ς=_{Z1} ... ς=_{Zk}(⟦M⟧)) of a query (Section 2.3). Like
// Query it is immutable after construction and safe for concurrent Eval.
type NormalForm struct {
	cf         *algebra.CoreForm
	schemaless bool
}

// Normalize rewrites the query into core-simplification normal form: a
// single vset-automaton, a list of string-equality selections over
// auxiliary variables, and one outer projection.
func (q *Query) Normalize() (*NormalForm, error) {
	cf, err := algebra.Simplify(q.expr)
	if err != nil {
		return nil, err
	}
	return &NormalForm{cf: cf, schemaless: q.schemaless}, nil
}

// Eval evaluates the normal form (must agree with Query.Eval — the
// content of the core-simplification lemma).
func (nf *NormalForm) Eval(doc []byte) *Relation {
	sem := vset.Functional
	if nf.schemaless {
		sem = vset.Schemaless
	}
	return nf.cf.Eval(doc, sem)
}

// Selections returns the number of string-equality selections.
func (nf *NormalForm) Selections() int { return len(nf.cf.Selections) }

// AutomatonStates returns the size of the single underlying automaton.
func (nf *NormalForm) AutomatonStates() int { return nf.cf.Automaton.NumStates() }

// Visible returns the visible (projected) variables.
func (nf *NormalForm) Visible() VarSet { return nf.cf.Visible }
