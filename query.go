package docspanner

import (
	"context"
	"fmt"
	"sync"

	"docspanner/internal/algebra"
	"docspanner/internal/lint"
	"docspanner/internal/plan"
	"docspanner/internal/vset"
)

// PlanOptions tunes the query planner behind Eval, Enumerate, and
// Count. The zero value is the default pipeline: all rewrite passes on,
// automatic backend selection, refl rewriting off.
type PlanOptions struct {
	// DisableRewrites turns off every logical rewrite pass; the plan
	// mirrors the expression tree.
	DisableRewrites bool
	// NaiveBackend forces the materializing reference evaluation for
	// every scan (the planner-off baseline: combined with
	// DisableRewrites it reproduces the classical bottom-up Expr.Eval).
	NaiveBackend bool
	// ReflRewrite opts into rewriting chains of string-equality
	// selections into refl-spanners (the Section 3.2 translation,
	// spanlint's SP007). Applied under functional semantics only.
	ReflRewrite bool
	// MaxFusedStates caps the automata built by the fusion rewrites
	// (default 4096).
	MaxFusedStates int
	// MaxDeterminizeStates is the backend-selection cost gate: a scan
	// whose NFA has more states is evaluated with the materializing
	// backend instead of being determinized (default 4096). The same
	// number budgets the SP009 determinization-blowup lint, which warns
	// when a scan passes this gate on NFA size but its DFA exceeds it.
	MaxDeterminizeStates int
}

// QueryOptions configures query construction (NewQuery).
type QueryOptions struct {
	// AutoToCore lets NewQuery accept refl-spanners by translating them
	// with ToCore into the core algebra automatically (reference-bounded
	// spanners only — the others are provably not core spanners, and
	// NewQuery reports the translation error). A functional refl-spanner
	// keeps its semantics: the translation is evaluated schemaless and
	// the planner filters the root for tuples total on the spanner's
	// variables, which is exactly the refl functional semantics.
	AutoToCore bool
	// Plan tunes the planner for the constructed query.
	Plan PlanOptions
}

// Query is a core-spanner algebra expression over regular spanners:
// primitive spanners combined with union, natural join, projection, and
// string-equality selection (Section 1 of the survey). Evaluation runs
// through the query planner: the expression is lowered to a logical
// plan, rewritten (dead-subtree pruning, duplicate-union elimination,
// selection/projection pushdown, the executable core-simplification
// lemma), and executed with a physical backend chosen per subplan —
// constant-delay enumeration for fused regular parts, materializing
// relational evaluation for the rest. Explain shows the chosen plan;
// WithPlan tunes or disables the planner.
//
// A Query is immutable — the combinators (Union, Join, Project, ...)
// return new queries — and safe for concurrent use: planning is
// memoized under a sync.Once and evaluation keeps its state on the
// stack, so Eval, Enumerate, and Explain may be called from multiple
// goroutines on a shared instance.
type Query struct {
	expr       algebra.Expr
	schemaless bool
	planOpts   PlanOptions
	// requireTotal filters the root result for totality on these
	// variables; used by AutoToCore to give translated functional
	// refl-spanners their semantics.
	requireTotal VarSet

	planOnce sync.Once
	planned  *plan.Planned
}

// Q lifts a compiled regular spanner into a query with default options.
func Q(s *Spanner) (*Query, error) {
	if !s.IsRegular() {
		return nil, fmt.Errorf("docspanner: queries take regular spanners; translate refl-spanners with ToCore first, or use NewQuery with AutoToCore")
	}
	return NewQuery(s, QueryOptions{})
}

// NewQuery lifts a compiled spanner into a query. Regular spanners lift
// directly; refl-spanners are accepted when opts.AutoToCore is set and
// the spanner is reference-bounded (see QueryOptions.AutoToCore).
func NewQuery(s *Spanner, opts QueryOptions) (*Query, error) {
	if s.IsRegular() {
		return &Query{
			expr:       algebra.Prim{A: s.nfa, Src: s.ast},
			schemaless: s.schemaless,
			planOpts:   opts.Plan,
		}, nil
	}
	if !opts.AutoToCore {
		return nil, fmt.Errorf("docspanner: queries take regular spanners; translate refl-spanners with ToCore first, or use NewQuery with AutoToCore")
	}
	e, err := s.rspanner.ToCore()
	if err != nil {
		return nil, fmt.Errorf("docspanner: AutoToCore: %w", err)
	}
	q := &Query{expr: e, schemaless: true, planOpts: opts.Plan}
	if !s.schemaless {
		// ToCore's equivalence holds under the schemaless semantics; the
		// functional refl relation is its restriction to total tuples.
		q.requireTotal = s.Vars()
	}
	return q, nil
}

// MustQ is Q that panics on error.
func MustQ(s *Spanner) *Query {
	q, err := Q(s)
	if err != nil {
		panic(err)
	}
	return q
}

// derive builds a combinator result, carrying the receiver's planner
// options; the schemaless flag and the root totality filter combine by
// union (mixing a schemaless operand in makes the whole query
// schemaless, exactly as before).
func (q *Query) derive(expr algebra.Expr, others ...*Query) *Query {
	nq := &Query{expr: expr, schemaless: q.schemaless, planOpts: q.planOpts, requireTotal: q.requireTotal}
	for _, o := range others {
		nq.schemaless = nq.schemaless || o.schemaless
		nq.requireTotal = nq.requireTotal.Union(o.requireTotal)
	}
	return nq
}

// WithPlan returns a copy of the query with the given planner options
// (the expression is shared; the copy plans independently).
func (q *Query) WithPlan(opts PlanOptions) *Query {
	return &Query{expr: q.expr, schemaless: q.schemaless, planOpts: opts, requireTotal: q.requireTotal}
}

// Vars returns the query's visible variables.
func (q *Query) Vars() VarSet { return q.expr.Vars() }

// Union returns q ∪ other.
func (q *Query) Union(other *Query) *Query {
	return q.derive(algebra.Union{L: q.expr, R: other.expr}, other)
}

// Join returns the natural join q ⋈ other.
func (q *Query) Join(other *Query) *Query {
	return q.derive(algebra.Join{L: q.expr, R: other.expr}, other)
}

// Project returns π_keep(q).
func (q *Query) Project(keep ...Var) *Query {
	return q.derive(algebra.Project{Sub: q.expr, Keep: NewVarSet(keep...)})
}

// SelectEqual returns ς=_z(q): tuples whose spans for all variables in z
// have the same content. This is the operation that takes queries from
// regular to core spanners (Section 2.3).
func (q *Query) SelectEqual(z ...Var) *Query {
	return q.derive(algebra.SelectEq{Sub: q.expr, Z: NewVarSet(z...)})
}

// Fuse applies the column-fusion operator ⨄_{lambda→target} (Section 3.2).
func (q *Query) Fuse(target Var, lambda ...Var) *Query {
	return q.derive(algebra.Fuse{Sub: q.expr, Lambda: NewVarSet(lambda...), Target: target})
}

// IsCore reports whether the query uses string-equality selection ς=
// anywhere, i.e. whether it needs the full core-spanner algebra of
// Section 2.3 rather than the selection-free (regular) fragment.
//
// Polarity convention: IsCore answers "does this query *require* the core
// class?", so true flags the computationally harder class — core-spanner
// containment and equivalence are undecidable (Section 2.4), while the
// regular fragment keeps them decidable. In the survey's terms every
// regular spanner *is* also a core spanner (the classes are nested, not
// disjoint); IsCore() == false therefore does not mean "not a core
// spanner" but "already expressible without selections". IsRegular is the
// exact negation. Contrast with Spanner.Hierarchical, where true flags
// the benign property.
func (q *Query) IsCore() bool { return algebra.HasSelections(q.expr) }

// IsRegular reports whether the query stays inside the regular-spanner
// fragment: no string-equality selection anywhere, so the whole query
// compiles to a single vset-automaton (via Normalize) with zero residual
// selections, and equivalence and containment remain decidable. It is
// defined as the exact negation of IsCore, mirroring Spanner.IsRegular.
func (q *Query) IsRegular() bool { return !q.IsCore() }

// Lint runs the spanlint static-analysis passes over the query and
// returns the diagnostics, sorted by position path ("$" is the root,
// "$.L"/"$.R"/"$.Sub" descend into operands). An empty slice means the
// query is lint-clean. Safe to call concurrently on a shared query.
//
// Two layers of passes run: the expression passes (SP001–SP008), which
// judge what the query says, and the plan passes (SP009–SP010), which
// judge what the planner's chosen physical plan will cost under this
// query's PlanOptions — a join the rewriter fused away is free and not
// reported, and a determinization blowup is reported only if backend
// selection will actually determinize. Calling Lint plans the query
// (planning is cached, so this costs nothing extra when the query is
// later evaluated).
func (q *Query) Lint() []Diagnostic {
	diags := lint.Expr(q.expr, q.schemaless)
	diags = append(diags, q.plan().Lint()...)
	lint.Sort(diags)
	return diags
}

// plan lowers, rewrites, and caches the query's execution plan (planned
// once per query; structurally identical queries share plans through
// the global plan cache).
func (q *Query) plan() *plan.Planned {
	q.planOnce.Do(func() {
		q.planned = plan.New(q.expr, q.planOptions())
	})
	return q.planned
}

func (q *Query) planOptions() plan.Options {
	return plan.Options{
		Schemaless:           q.schemaless,
		DisableRewrites:      q.planOpts.DisableRewrites,
		ReflRewrite:          q.planOpts.ReflRewrite,
		NaiveBackend:         q.planOpts.NaiveBackend,
		MaxFusedStates:       q.planOpts.MaxFusedStates,
		MaxDeterminizeStates: q.planOpts.MaxDeterminizeStates,
		RequireTotal:         q.requireTotal,
	}
}

// Eval materializes the query result on doc, executing the planned
// physical operators.
func (q *Query) Eval(doc []byte) *Relation {
	return q.plan().Eval(doc)
}

// Enumerate streams the query's result tuples on doc without
// materializing intermediate relations where the plan allows it (a
// query fused to a single automaton streams with constant delay; plans
// with residual algebra materialize below the root). Return false from
// f to stop early.
func (q *Query) Enumerate(doc []byte, f func(t Tuple) bool) {
	q.plan().Enumerate(doc, f)
}

// Count returns the number of result tuples on doc.
func (q *Query) Count(doc []byte) int {
	return q.plan().Count(doc)
}

// EnumerateContext is Enumerate with cancellation: the enumeration
// stops as soon as ctx is cancelled or its deadline passes, and the
// context's error is returned (nil on completion or early stop by f).
//
// Cancellation contract: the context is checked before the enumeration
// starts and then between consecutive tuples, so on a streaming plan
// (Streaming() == true) cancellation is observed within one tuple's
// delay — constant delay for fused regular plans. Plans with residual
// algebra materialize below the root first; for those, cancellation is
// only observed while the materialized tuples are being delivered.
// A nil ctx behaves like context.Background().
func (q *Query) EnumerateContext(ctx context.Context, doc []byte, f func(t Tuple) bool) error {
	return enumerateWithContext(ctx, f, func(g func(Tuple) bool) {
		q.plan().Enumerate(doc, g)
	})
}

// CountContext is Count with cancellation, under the same contract as
// EnumerateContext; on cancellation the partial count so far is
// returned alongside the context's error. Like Count, single-scan plans
// count through the tuple-free walk — no tuples are built, the context
// is polled per counted tuple.
func (q *Query) CountContext(ctx context.Context, doc []byte) (int, error) {
	return countWithContext(ctx, func(poll func() bool) (int, bool) {
		return q.plan().CountPoll(doc, poll)
	})
}

// countWithContext adapts a poll-style counting walk to the context
// contract of CountContext.
func countWithContext(ctx context.Context, run func(poll func() bool) (int, bool)) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	done := ctx.Done()
	n, complete := run(func() bool {
		select {
		case <-done:
			return false
		default:
			return true
		}
	})
	if !complete {
		return n, ctx.Err()
	}
	return n, nil
}

// enumerateWithContext runs a streaming enumeration with the yield
// wrapped in a per-tuple cancellation check (a non-blocking poll of
// ctx.Done, cheap next to the per-tuple work of any backend).
func enumerateWithContext(ctx context.Context, f func(Tuple) bool, run func(func(Tuple) bool)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	done := ctx.Done()
	cancelled := false
	run(func(t Tuple) bool {
		select {
		case <-done:
			cancelled = true
			return false
		default:
		}
		return f(t)
	})
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// Streaming reports whether Enumerate on this query yields tuples
// incrementally (the plan's root is a streaming operator) rather than
// materializing the full relation first.
func (q *Query) Streaming() bool { return q.plan().Streaming() }

// DistinctEnumeration reports whether Enumerate delivers every result
// tuple exactly once. When true, callers collecting the output can skip
// relation-level deduplication.
func (q *Query) DistinctEnumeration() bool { return q.plan().DistinctEnumeration() }

// Explain renders the query's execution plan: the rewritten logical
// shape, the physical backend per node, and the rewrite provenance each
// pass recorded. The format is human-oriented and not stable across
// releases.
func (q *Query) Explain() string { return q.plan().Explain() }

// EvalNaive is the planner-free reference evaluation (classical
// bottom-up materialization of the expression tree). It is the baseline
// the rewrite passes are validated against; prefer Eval.
func (q *Query) EvalNaive(doc []byte) *Relation {
	sem := vset.Functional
	if q.schemaless {
		sem = vset.Schemaless
	}
	out := q.expr.Eval(doc, sem)
	if len(q.requireTotal) > 0 {
		filtered := NewRelation()
		for _, t := range out.Tuples() {
			if t.TotalOn(q.requireTotal) {
				filtered.Add(t)
			}
		}
		out = filtered
	}
	return out
}

// String renders the expression tree.
func (q *Query) String() string { return algebra.String(q.expr) }

// NormalForm is the core-simplification normal form
// π_Visible(ς=_{Z1} ... ς=_{Zk}(⟦M⟧)) of a query (Section 2.3). Like
// Query it is immutable after construction and safe for concurrent Eval.
// It satisfies Evaluator, so it can be compared against spanners and
// queries with EquivalentUpTo and evaluated in batch with EvalDocs.
type NormalForm struct {
	cf           *algebra.CoreForm
	schemaless   bool
	requireTotal VarSet
}

var _ Evaluator = (*NormalForm)(nil)
var _ Evaluator = (*Query)(nil)

// Normalize rewrites the query into core-simplification normal form: a
// single vset-automaton, a list of string-equality selections over
// auxiliary variables, and one outer projection.
func (q *Query) Normalize() (*NormalForm, error) {
	cf, err := algebra.Simplify(q.expr)
	if err != nil {
		return nil, err
	}
	return &NormalForm{cf: cf, schemaless: q.schemaless, requireTotal: q.requireTotal}, nil
}

// Eval evaluates the normal form (must agree with Query.Eval — the
// content of the core-simplification lemma).
func (nf *NormalForm) Eval(doc []byte) *Relation {
	sem := vset.Functional
	if nf.schemaless {
		sem = vset.Schemaless
	}
	out := nf.cf.Eval(doc, sem)
	if len(nf.requireTotal) > 0 {
		filtered := NewRelation()
		for _, t := range out.Tuples() {
			if t.TotalOn(nf.requireTotal) {
				filtered.Add(t)
			}
		}
		out = filtered
	}
	return out
}

// Selections returns the number of string-equality selections.
func (nf *NormalForm) Selections() int { return len(nf.cf.Selections) }

// AutomatonStates returns the size of the single underlying automaton.
func (nf *NormalForm) AutomatonStates() int { return nf.cf.Automaton.NumStates() }

// Visible returns the visible (projected) variables.
func (nf *NormalForm) Visible() VarSet { return nf.cf.Visible }
