package docspanner

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// The split-correct configuration used throughout: documents over {a,b,;}
// are split at semicolons, and the extraction spanner matches inside a
// single segment (aa cannot cross a ';'), exactly the positive instance
// of the internal/split tests.
const (
	shardAlphabet   = "ab;"
	segmentSplitter = "(.*;)?!s{[ab]*}(;.*)?"
	segmentPattern  = ".*!x{aa}.*"
)

func shardFixture(t testing.TB) (p, splitter *Spanner) {
	t.Helper()
	opts := Options{Alphabet: []byte(shardAlphabet)}
	return MustCompile(segmentPattern, opts), MustCompile(segmentSplitter, opts)
}

func batchDocs(n int) [][]byte {
	docs := make([][]byte, n)
	for i := range docs {
		docs[i] = []byte(fmt.Sprintf("aa;a%saa;b", string("ab"[i%2])))
	}
	return docs
}

func TestEvalDocsMatchesSerial(t *testing.T) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	docs := [][]byte{
		[]byte("abab"),
		[]byte("bbbb"),
		[]byte(""),
		[]byte("aab"),
		[]byte("ababab"),
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := EvalDocs(context.Background(), s, docs, ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(docs) {
			t.Fatalf("workers=%d: %d results for %d docs", workers, len(got), len(docs))
		}
		for i, doc := range docs {
			if want := s.Eval(doc); !got[i].Equal(want) {
				t.Errorf("workers=%d doc %d: %v, want %v", workers, i, got[i], want)
			}
		}
	}
}

func TestEvalDocsWithQueryAndNormalForm(t *testing.T) {
	opts := Options{Alphabet: []byte("ab,")}
	pair := MustCompile("!x{(a|b)+},!y{(a|b)+}", opts)
	q := MustQ(pair).SelectEqual("x", "y").Project("x")
	nf, err := q.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	docs := [][]byte{[]byte("ab,ab"), []byte("a,b"), []byte("ba,ba")}
	for _, ev := range []Evaluator{q, nf} {
		got, err := EvalDocs(context.Background(), ev, docs, ParallelOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, doc := range docs {
			if want := ev.Eval(doc); !got[i].Equal(want) {
				t.Errorf("%T doc %d: %v, want %v", ev, i, got[i], want)
			}
		}
	}
}

func TestEvalDocsCancellation(t *testing.T) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvalDocs(ctx, s, batchDocs(64), ParallelOptions{Workers: 2}); err == nil {
		t.Error("cancelled EvalDocs returned nil error")
	}
}

func TestEvalDocsEmptyBatch(t *testing.T) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	got, err := EvalDocs(context.Background(), s, nil, ParallelOptions{})
	if err != nil || len(got) != 0 {
		t.Errorf("EvalDocs(nil batch) = %v, %v", got, err)
	}
}

// tupleSeq flattens an EnumerateDocs run into a comparable trace.
func tupleSeq(t *testing.T, s *Spanner, docs [][]byte, workers int) []string {
	t.Helper()
	var seq []string
	err := EnumerateDocs(context.Background(), s, docs, ParallelOptions{Workers: workers}, func(doc int, tu Tuple) bool {
		seq = append(seq, fmt.Sprintf("%d:%s", doc, tu.Key()))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestEnumerateDocsDeterministicOrder(t *testing.T) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	docs := [][]byte{[]byte("abab"), []byte("ab"), []byte("bbbb"), []byte("aabab")}

	// Serial reference: documents in order, tuples in enumeration order.
	var want []string
	for i, doc := range docs {
		s.Enumerate(doc, func(tu Tuple) bool {
			want = append(want, fmt.Sprintf("%d:%s", i, tu.Key()))
			return true
		})
	}
	for _, workers := range []int{1, 2, 8} {
		for rep := 0; rep < 3; rep++ {
			if got := tupleSeq(t, s, docs, workers); !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d rep=%d: order %v, want %v", workers, rep, got, want)
			}
		}
	}
}

func TestEnumerateDocsEarlyStop(t *testing.T) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	docs := batchDocs(16)
	for i := range docs {
		docs[i] = []byte("abababab")
	}
	seen := 0
	err := EnumerateDocs(context.Background(), s, docs, ParallelOptions{Workers: 4}, func(doc int, tu Tuple) bool {
		seen++
		return seen < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Errorf("early stop delivered %d tuples, want 3", seen)
	}
}

func TestEnumerateDocsCancellation(t *testing.T) {
	s := MustCompile(".*!x{ab}.*", Options{Alphabet: []byte("ab")})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := EnumerateDocs(ctx, s, batchDocs(64), ParallelOptions{Workers: 2}, func(int, Tuple) bool { return true })
	if err == nil {
		t.Error("cancelled EnumerateDocs returned nil error")
	}
}

// TestEvalShardedMatchesSerial is the cross-validation required by the
// split-correctness guarantee: on a split-correct (spanner, splitter)
// pair, the parallel sharded evaluation must equal the direct serial one
// on every document.
func TestEvalShardedMatchesSerial(t *testing.T) {
	p, splitter := shardFixture(t)
	docs := []string{"", "aa", "b;aab;aa", "aa;a;aa", ";;", "aabb;ab;aa;", "aaaa;aaaa"}
	for _, workers := range []int{0, 1, 4} {
		for _, doc := range docs {
			got, err := EvalSharded(context.Background(), p, splitter, "s", []byte(doc),
				ShardOptions{Workers: workers, Verify: true})
			if err != nil {
				t.Fatalf("workers=%d doc=%q: %v", workers, doc, err)
			}
			want := p.Eval([]byte(doc))
			if !got.Equal(want) {
				t.Errorf("workers=%d doc=%q: sharded %v, serial %v", workers, doc, got, want)
			}
		}
	}
}

func TestEvalShardedRejectsSplitIncorrect(t *testing.T) {
	opts := Options{Alphabet: []byte(shardAlphabet)}
	// a;a crosses segment boundaries — the negative instance of the
	// internal/split tests.
	p := MustCompile(".*!x{a;a}.*", opts)
	splitter := MustCompile(segmentSplitter, opts)
	_, err := EvalSharded(context.Background(), p, splitter, "s", []byte("a;a"), ShardOptions{Verify: true})
	if err == nil {
		t.Fatal("split-incorrect spanner accepted with Verify")
	}
	// Without verification the caller gets per-shard semantics: no match,
	// since a;a cannot occur inside any ;-free shard.
	got, err := EvalSharded(context.Background(), p, splitter, "s", []byte("a;a"), ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("per-shard evaluation of a;a = %v, want empty", got)
	}
}

func TestEvalShardedRefl(t *testing.T) {
	opts := Options{Alphabet: []byte(shardAlphabet)}
	// Square detection inside each segment — a refl-spanner, so Verify is
	// unavailable; validate against the serial shard-by-shard pipeline.
	p := MustCompile("!x{(a|b)+}&x", opts)
	splitter := MustCompile(segmentSplitter, opts)
	doc := []byte("abab;aa;ba")
	got, err := EvalSharded(context.Background(), p, splitter, "s", doc, ShardOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := SplitSpans(splitter, "s", doc)
	if err != nil {
		t.Fatal(err)
	}
	want := NewRelation()
	for _, sh := range shards {
		for _, tu := range p.Eval(sh.Content(doc)).Tuples() {
			nt := make(Tuple, len(tu))
			for v, sp := range tu {
				nt[v] = NewSpan(sp.Begin+sh.Begin-1, sp.End+sh.Begin-1)
			}
			want.Add(nt)
		}
	}
	if !got.Equal(want) {
		t.Errorf("refl sharded = %v, want %v", got, want)
	}
	if got.Len() == 0 {
		t.Error("expected squares in abab and aa")
	}
	if _, _, err := CheckSplitCorrect(p, splitter, "s", nil, 2); err == nil {
		t.Error("CheckSplitCorrect accepted a refl-spanner")
	}
}

func TestEvalShardedErrors(t *testing.T) {
	p, splitter := shardFixture(t)
	if _, err := EvalSharded(context.Background(), p, splitter, "nosuchvar", []byte("aa"), ShardOptions{}); err == nil {
		t.Error("unknown split variable accepted")
	}
	refl := MustCompile("!x{a}&x", Options{Alphabet: []byte("a")})
	if _, err := EvalSharded(context.Background(), p, refl, "x", []byte("aa"), ShardOptions{}); err == nil {
		t.Error("refl splitter accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvalSharded(ctx, p, splitter, "s", []byte("aa;aa;aa;aa"), ShardOptions{Workers: 2}); err == nil {
		t.Error("cancelled EvalSharded returned nil error")
	}
}

func TestSplitSpans(t *testing.T) {
	_, splitter := shardFixture(t)
	got, err := SplitSpans(splitter, "s", []byte("ab;a;;bb"))
	if err != nil {
		t.Fatal(err)
	}
	want := []Span{NewSpan(1, 3), NewSpan(4, 5), NewSpan(6, 6), NewSpan(7, 9)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitSpans = %v, want %v", got, want)
	}
}

func TestCheckSplitCorrect(t *testing.T) {
	p, splitter := shardFixture(t)
	correct, ce, err := CheckSplitCorrect(p, splitter, "s", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !correct || ce != nil {
		t.Errorf("CheckSplitCorrect = %v, %q", correct, ce)
	}
	bad := MustCompile(".*!x{a;a}.*", Options{Alphabet: []byte(shardAlphabet)})
	correct, ce, err = CheckSplitCorrect(bad, splitter, "s", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if correct {
		t.Error("split-incorrect spanner reported correct")
	}
	if ce == nil {
		t.Error("no counterexample found for split-incorrect spanner")
	}
}

// TestReflEnumerateStreams checks the work-saving property of the
// streaming refl enumeration: an early-stopping callback sees exactly k
// tuples, and NonEmpty-style probing does not materialize the relation.
func TestReflEnumerateStreams(t *testing.T) {
	s := MustCompile("!x{(a|b)+}&x", Options{Alphabet: []byte("ab")})
	doc := []byte("abab")
	full := s.Count(doc)
	if full == 0 {
		t.Fatal("fixture has no results")
	}
	n := 0
	s.Enumerate(doc, func(Tuple) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop enumeration delivered %d tuples, want 1", n)
	}
	// Streaming must agree with materialization.
	streamed := NewRelation()
	s.Enumerate(doc, func(tu Tuple) bool { streamed.Add(tu); return true })
	if !streamed.Equal(s.Eval(doc)) {
		t.Errorf("streamed = %v, want %v", streamed, s.Eval(doc))
	}
}
