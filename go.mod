module docspanner

go 1.23
